#include "study/counters_report.hh"

#include <functional>

#include "arch/machines.hh"
#include "sim/parallel/parallel_runner.hh"
#include "workload/os_model.hh"

namespace aosd
{

std::vector<CountedPrimitiveRun>
countAllPrimitives(const std::vector<MachineDesc> &machines,
                   unsigned reps)
{
    ParallelRunner serial(1);
    return countAllPrimitives(machines, reps, serial);
}

std::vector<CountedPrimitiveRun>
countAllPrimitives(const std::vector<MachineDesc> &machines,
                   unsigned reps, ParallelRunner &runner)
{
    std::vector<std::function<CountedPrimitiveRun()>> tasks;
    tasks.reserve(machines.size() * std::size(allPrimitives));
    for (const MachineDesc &m : machines)
        for (Primitive p : allPrimitives)
            tasks.push_back(
                [&m, p, reps] { return countPrimitive(m, p, reps); });
    return runner.map<CountedPrimitiveRun>(tasks);
}

Json
buildCountersDoc(const std::vector<CountedPrimitiveRun> &runs,
                 unsigned reps)
{
    Json doc = Json::object();
    doc.set("schema_version", 1);
    doc.set("generator", "aosd_counters");
    doc.set("repetitions", static_cast<std::uint64_t>(reps));

    Json machines_json = Json::object();
    const char *current = nullptr;
    Json machine_json;
    auto flush = [&]() {
        if (current)
            machines_json.set(current, std::move(machine_json));
    };
    for (const CountedPrimitiveRun &run : runs) {
        const char *slug = machineSlug(run.machine);
        if (!current || std::string(current) != slug) {
            flush();
            current = slug;
            machine_json = Json::object();
        }
        Json prim = run.toJson();
        // machine/primitive are the object path; drop the redundancy.
        Json cell = Json::object();
        cell.set("cycles", prim.at("cycles"));
        cell.set("cycles_per_call",
                 static_cast<double>(run.totalCycles) /
                     static_cast<double>(
                         run.repetitions ? run.repetitions : 1));
        cell.set("counters", prim.at("counters"));
        cell.set("reconciliation", prim.at("reconciliation"));
        machine_json.set(primitiveSlug(run.primitive),
                         std::move(cell));
    }
    flush();
    doc.set("machines", std::move(machines_json));
    return doc;
}

Json
buildKernelWindowsDoc(const MachineDesc &machine,
                      ParallelRunner &runner)
{
    OsModelConfig config;
    config.measureKernelWindow = true;
    std::vector<Table7Row> rows = runMachGrid(machine, runner, config);

    Json doc = Json::object();
    doc.set("schema_version", 1);
    doc.set("generator", "aosd_counters --kernel-windows");
    doc.set("machine", machineSlug(machine.id));
    Json cells = Json::object();
    for (const Table7Row &row : rows) {
        const char *os = row.structure == OsStructure::Monolithic
                             ? "mach25"
                             : "mach30";
        Json cell = Json::object();
        cell.set("elapsed_seconds", row.elapsedSeconds);
        cell.set("reconciliation", row.kernelWindow.toJson());
        cells.set(appSlug(row.app) + "." + os, std::move(cell));
    }
    doc.set("cells", std::move(cells));
    return doc;
}

} // namespace aosd
