/**
 * @file
 * Machine-readable figures: every number the reproduction simulates,
 * next to the paper's value where the paper gives one.
 *
 * The bench binaries pretty-print these; tools/aosd_report serializes
 * them to report.json; tests/test_report_regression.cc diffs them
 * against a checked-in snapshot so CI catches any drift in any
 * simulated figure. One Figure == one cell of one paper table (or one
 * headline scalar from the prose).
 */

#ifndef AOSD_STUDY_FIGURES_HH
#define AOSD_STUDY_FIGURES_HH

#include <cmath>
#include <string>
#include <vector>

namespace aosd
{

/** One simulated number, optionally anchored to a paper value. */
struct Figure
{
    /** Unique within its table, e.g. "null_syscall_us.CVAX". */
    std::string id;
    /** Which paper table it belongs to ("table1" ... "table7",
     *  "headlines"). */
    std::string table;
    /** Unit slug: "us", "instructions", "words", "count", "percent",
     *  "x" (ratio), "s". */
    std::string unit;
    double sim = 0.0;
    /** NaN when the paper gives no value for this cell. */
    double paper = std::nan("");

    bool hasPaper() const { return !std::isnan(paper); }

    /** (sim - paper) / |paper|; NaN when no paper value or paper is
     *  zero with a nonzero simulation. */
    double
    relativeError() const
    {
        if (!hasPaper())
            return std::nan("");
        if (paper == 0.0)
            return sim == 0.0 ? 0.0 : std::nan("");
        return (sim - paper) / std::fabs(paper);
    }
};

class ParallelRunner;

/*
 * Every builder has two forms: the zero-argument original, and an
 * overload taking a ParallelRunner that fans the table's independent
 * simulation cells (one job per machine, primitive or Table 7
 * (structure, app) cell) across the runner's workers. The zero-arg
 * form delegates to the overload with a serial (jobs == 1) runner, so
 * there is exactly one implementation of every table and the two
 * forms cannot drift apart. Figures always come back in table order —
 * the runner merges by task index, never completion order — so the
 * output is byte-identical at any job count.
 */

/** Table 1: primitive times (us) per machine, vs paper. */
std::vector<Figure> table1Figures();
std::vector<Figure> table1Figures(ParallelRunner &runner);

/** Table 2: dynamic instruction counts per machine, vs paper. */
std::vector<Figure> table2Figures();
std::vector<Figure> table2Figures(ParallelRunner &runner);

/** Table 3: SRC RPC breakdown (CVAX Firefly) + wire-share anchors. */
std::vector<Figure> table3Figures();
std::vector<Figure> table3Figures(ParallelRunner &runner);

/** Table 4: LRPC breakdown, totals and TLB share, vs paper anchors. */
std::vector<Figure> table4Figures();
std::vector<Figure> table4Figures(ParallelRunner &runner);

/** Table 5: null-syscall phase decomposition, vs paper. */
std::vector<Figure> table5Figures();
std::vector<Figure> table5Figures(ParallelRunner &runner);

/** Table 6: processor thread state words, vs paper. */
std::vector<Figure> table6Figures();
std::vector<Figure> table6Figures(ParallelRunner &runner);

/** Table 7: Mach 2.5 vs 3.0 OS-primitive reliance, vs paper. */
std::vector<Figure> table7Figures();
std::vector<Figure> table7Figures(ParallelRunner &runner);

/** Headline prose anchors (context-switch inflation, SPARC overhead
 *  seconds, register-window share...). */
std::vector<Figure> headlineFigures();
std::vector<Figure> headlineFigures(ParallelRunner &runner);

/** Hardware-counter reconciliation: percent of each Table 1
 *  machine x primitive's cycles explained by event counts times
 *  modeled penalties (100 when the counters are honest). */
std::vector<Figure> countersFigures();
std::vector<Figure> countersFigures(ParallelRunner &runner);

/** Kernel-window reconciliation: percent of each Table 7
 *  (app, OS structure) cell's charged primitive cycles explained by
 *  counted kernel events times the machine's primitive costs. */
std::vector<Figure> kernelWindowFigures();
std::vector<Figure> kernelWindowFigures(ParallelRunner &runner);

/** Per-machine counter calibration: the §2.3/§3.2 event rates the
 *  paper argues from — write-buffer stalls per store (DS3100's R2000
 *  vs DS5000's R3000), TLB misses re-established per context switch,
 *  SPARC windows spilled per switch — measured from counted runs. */
std::vector<Figure> calibrationFigures();
std::vector<Figure> calibrationFigures(ParallelRunner &runner);

/** All of the above, in table order. */
std::vector<Figure> allFigures();
std::vector<Figure> allFigures(ParallelRunner &runner);

} // namespace aosd

#endif // AOSD_STUDY_FIGURES_HH
