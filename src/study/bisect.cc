#include "study/bisect.hh"

#include <algorithm>
#include <cmath>
#include <map>

namespace aosd
{

namespace
{

/** One reconciliation-bearing cell of a document. */
struct CellRef
{
    std::string unit;
    const Json *rec = nullptr;
};

void
collectCountersCells(const Json &doc, std::vector<CellRef> &out)
{
    const Json *machines = doc.find("machines");
    if (!machines || !machines->isObject())
        return;
    for (const auto &mkv : machines->items()) {
        if (!mkv.second.isObject())
            continue;
        for (const auto &pkv : mkv.second.items()) {
            const Json *rec = pkv.second.find("reconciliation");
            if (rec && rec->isObject())
                out.push_back({mkv.first + "/" + pkv.first, rec});
        }
    }
}

void
collectKernelWindowCells(const Json &doc, std::vector<CellRef> &out)
{
    const Json *cells = doc.find("cells");
    if (!cells || !cells->isObject())
        return;
    for (const auto &kv : cells->items()) {
        const Json *rec = kv.second.find("kernel_window");
        if (!rec)
            rec = kv.second.find("reconciliation");
        if (rec && rec->isObject())
            out.push_back({kv.first, rec});
    }
}

double
numberAt(const Json *obj, const char *key)
{
    if (!obj)
        return 0;
    const Json *v = obj->find(key);
    return v && v->isNumber() ? v->asNumber() : 0;
}

/** Rank the term moves of two aligned reconciliation-cell sets. */
BisectResult
bisectCells(const std::vector<CellRef> &old_cells,
            const std::vector<CellRef> &new_cells)
{
    BisectResult r;

    std::map<std::string, const Json *> old_by_unit;
    for (const CellRef &c : old_cells)
        old_by_unit[c.unit] = c.rec;

    std::map<std::string, bool> seen;
    for (const CellRef &nc : new_cells) {
        seen[nc.unit] = true;
        auto it = old_by_unit.find(nc.unit);
        if (it == old_by_unit.end()) {
            r.notes.push_back("unit only in the new document: " +
                              nc.unit);
            continue;
        }
        const Json *orec = it->second;
        double dactual = numberAt(nc.rec, "actual_cycles") -
                         numberAt(orec, "actual_cycles");
        r.totalDelta += dactual;

        const Json *nterms = nc.rec->find("terms");
        const Json *oterms = orec->find("terms");
        double explained = 0;
        if (nterms && nterms->isObject()) {
            for (const auto &tkv : nterms->items()) {
                const Json *ot =
                    oterms && oterms->isObject()
                        ? oterms->find(tkv.first.c_str())
                        : nullptr;
                double dcycles = numberAt(&tkv.second, "cycles") -
                                 numberAt(ot, "cycles");
                if (dcycles == 0)
                    continue;
                explained += dcycles;
                BisectFinding f;
                f.unit = nc.unit;
                f.eventClass = tkv.first;
                f.deltaCount = numberAt(&tkv.second, "count") -
                               numberAt(ot, "count");
                f.penaltyCycles =
                    numberAt(&tkv.second, "penalty_cycles");
                f.delta = dcycles;
                r.findings.push_back(std::move(f));
            }
        }
        // Anything the terms do not cover (a cycle source without a
        // counter) surfaces explicitly instead of vanishing.
        double residual = dactual - explained;
        if (std::fabs(residual) > 1e-6) {
            BisectFinding f;
            f.unit = nc.unit;
            f.eventClass = "(unattributed)";
            f.delta = residual;
            r.findings.push_back(std::move(f));
        }
    }
    for (const CellRef &oc : old_cells)
        if (!seen.count(oc.unit))
            r.notes.push_back("unit only in the old document: " +
                              oc.unit);

    for (BisectFinding &f : r.findings)
        f.share = r.totalDelta != 0 ? f.delta / r.totalDelta : 0;

    std::sort(r.findings.begin(), r.findings.end(),
              [](const BisectFinding &a, const BisectFinding &b) {
                  double da = std::fabs(a.delta);
                  double db = std::fabs(b.delta);
                  if (da != db)
                      return da > db;
                  if (a.unit != b.unit)
                      return a.unit < b.unit;
                  return a.eventClass < b.eventClass;
              });
    return r;
}

} // namespace

Json
BisectResult::toJson() const
{
    Json out = Json::object();
    out.set("schema_version", Json(1));
    out.set("generator", Json("aosd_bisect"));
    out.set("total_delta", Json(totalDelta));
    Json arr = Json::array();
    for (const BisectFinding &f : findings) {
        Json j = Json::object();
        j.set("unit", Json(f.unit));
        j.set("event_class", Json(f.eventClass));
        j.set("delta_count", Json(f.deltaCount));
        j.set("penalty_cycles", Json(f.penaltyCycles));
        j.set("delta", Json(f.delta));
        j.set("share", Json(f.share));
        arr.push(std::move(j));
    }
    out.set("findings", std::move(arr));
    Json notes_json = Json::array();
    for (const std::string &n : notes)
        notes_json.push(Json(n));
    out.set("notes", std::move(notes_json));
    return out;
}

BisectResult
bisectCountersDocs(const Json &old_doc, const Json &new_doc)
{
    std::vector<CellRef> old_cells, new_cells;
    collectCountersCells(old_doc, old_cells);
    collectCountersCells(new_doc, new_cells);
    return bisectCells(old_cells, new_cells);
}

BisectResult
bisectKernelWindowDocs(const Json &old_doc, const Json &new_doc)
{
    std::vector<CellRef> old_cells, new_cells;
    collectKernelWindowCells(old_doc, old_cells);
    collectKernelWindowCells(new_doc, new_cells);
    return bisectCells(old_cells, new_cells);
}

BisectResult
bisectReportDocs(const Json &old_doc, const Json &new_doc)
{
    BisectResult r;

    auto collect = [](const Json &doc,
                      std::map<std::string, double> &out,
                      std::vector<std::string> &order) {
        const Json *tables = doc.find("tables");
        if (!tables || !tables->isObject())
            return;
        for (const auto &tkv : tables->items()) {
            const Json *figs = tkv.second.find("figures");
            if (!figs || !figs->isArray())
                continue;
            for (std::size_t i = 0; i < figs->size(); ++i) {
                const Json &f = figs->at(i);
                const Json *id = f.find("id");
                const Json *sim = f.find("sim");
                if (!id || !sim || !sim->isNumber())
                    continue;
                std::string path = tkv.first + "." + id->asString();
                if (!out.count(path))
                    order.push_back(path);
                out[path] = sim->asNumber();
            }
        }
    };

    std::map<std::string, double> old_figs, new_figs;
    std::vector<std::string> old_order, new_order;
    collect(old_doc, old_figs, old_order);
    collect(new_doc, new_figs, new_order);

    for (const std::string &path : new_order) {
        auto it = old_figs.find(path);
        if (it == old_figs.end()) {
            r.notes.push_back("figure only in the new document: " +
                              path);
            continue;
        }
        double d = new_figs[path] - it->second;
        if (std::isnan(d) || d == 0)
            continue;
        r.totalDelta += d;
        BisectFinding f;
        f.unit = path;
        f.eventClass = "figure";
        f.delta = d;
        r.findings.push_back(std::move(f));
    }
    for (const std::string &path : old_order)
        if (!new_figs.count(path))
            r.notes.push_back("figure only in the old document: " +
                              path);

    for (BisectFinding &f : r.findings)
        f.share = r.totalDelta != 0 ? f.delta / r.totalDelta : 0;
    std::sort(r.findings.begin(), r.findings.end(),
              [](const BisectFinding &a, const BisectFinding &b) {
                  double da = std::fabs(a.delta);
                  double db = std::fabs(b.delta);
                  if (da != db)
                      return da > db;
                  return a.unit < b.unit;
              });
    return r;
}

BisectResult
bisectDocs(const Json &old_doc, const Json &new_doc)
{
    if (new_doc.find("machines") && old_doc.find("machines"))
        return bisectCountersDocs(old_doc, new_doc);
    if (new_doc.find("cells") && old_doc.find("cells"))
        return bisectKernelWindowDocs(old_doc, new_doc);
    if (new_doc.find("tables") && old_doc.find("tables"))
        return bisectReportDocs(old_doc, new_doc);
    BisectResult r;
    r.notes.push_back(
        "unrecognized document pair: expected counters.json "
        "(machines), kernel-windows (cells) or report.json (tables)");
    return r;
}

} // namespace aosd
