/**
 * @file
 * spans.json — per-primitive latency percentiles, slowest-request
 * exemplars and tail-vs-median attribution from span-traced requests.
 *
 * For every Table 1 machine × primitive pair the study drives a fresh
 * SimKernel through `requestsPerPair` span-traced requests. Each
 * request performs one primitive invocation followed by a random
 * number of kernel-pool page touches (the TLB pressure that makes some
 * requests slow), so the per-request latency histogram has a real
 * tail. The report keeps:
 *
 *   - the log2 Histogram of request latencies (p50/p90/p99/p999);
 *   - the top-K slowest requests with their full span trees and
 *     counter deltas (ties break on ascending request id, so output
 *     is byte-stable at any --jobs value);
 *   - a "tail vs median" attribution pricing the counter-delta
 *     difference between the p99 exemplar and the median request with
 *     the reconcile layer's constants — the same explain-the-cycles
 *     discipline as aosd_bisect, but within one run.
 *
 * An `ipc` section traces one null call of each analytic IPC model
 * (RPC/LRPC/URPC) so their component breakdowns appear as span trees
 * too.
 *
 * Requests never run user code or charge raw microseconds, so every
 * cycle in a request is a priced primitive event and the attribution
 * explains (essentially) 100% of any request-to-request gap — the
 * acceptance gate asks for >= 80%.
 */

#ifndef AOSD_STUDY_SPAN_REPORT_HH
#define AOSD_STUDY_SPAN_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "arch/machines.hh"
#include "sim/json.hh"
#include "sim/parallel/parallel_runner.hh"

namespace aosd
{

inline constexpr int spansSchemaVersion = 1;

/** Knobs for the span study (defaults are the CI configuration). */
struct SpanOptions
{
    /** Span-traced requests per (machine, primitive) cell. */
    std::size_t requestsPerPair = 1000;
    /** Slowest-request exemplars kept per cell. */
    std::size_t topK = 3;
    /** Mapped kernel-pool pages the random touches draw from. */
    std::uint32_t poolPages = 96;
    /** Maximum random kernel-pool touches per request. */
    std::uint32_t touchesMax = 8;
    /** Base seed; each cell derives its own deterministic stream. */
    std::uint64_t seed = 0x0a05d5ed;
    /** Machines to study; empty selects the Table 1 machines (the
     *  same --machines subsetting spelling as aosd_counters and
     *  aosd_traffic). */
    std::vector<MachineId> machines;
};

/** Build spans.json v1 (deterministic at any runner job count). */
Json buildSpansDoc(ParallelRunner &runner,
                   const SpanOptions &opts = {});

/**
 * Chrome-tracing / Perfetto export of a spans document: one process
 * per machine, one track per primitive, the exemplar span trees as
 * nested "X" slices laid end to end, plus counter tracks for the
 * exemplars' nonzero counter deltas.
 */
std::string spansPerfettoJson(const Json &spansDoc);

/** Render the per-cell percentile/attribution summary as text. */
std::string spansTextSummary(const Json &spansDoc);

} // namespace aosd

#endif // AOSD_STUDY_SPAN_REPORT_HH
