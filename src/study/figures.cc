#include "study/figures.hh"

#include <functional>
#include <utility>

#include "arch/machines.hh"
#include "core/study.hh"
#include "cpu/counted_primitives.hh"
#include "cpu/handler_variants.hh"
#include "cpu/handlers.hh"
#include "cpu/primitive_costs.hh"
#include "os/ipc/lrpc.hh"
#include "os/ipc/rpc.hh"
#include "os/kernel/kernel.hh"
#include "sim/parallel/parallel_runner.hh"
#include "workload/app_profile.hh"
#include "workload/os_model.hh"

namespace aosd
{

namespace
{

Figure
fig(std::string table, std::string id, std::string unit, double sim,
    double paper = std::nan(""))
{
    Figure f;
    f.table = std::move(table);
    f.id = std::move(id);
    f.unit = std::move(unit);
    f.sim = sim;
    f.paper = paper;
    return f;
}

} // namespace

std::vector<Figure>
table1Figures()
{
    ParallelRunner serial(1);
    return table1Figures(serial);
}

std::vector<Figure>
table1Figures(ParallelRunner & /* cells are cheap db reads */)
{
    const MachineId machines[] = {MachineId::CVAX, MachineId::M88000,
                                  MachineId::R2000, MachineId::R3000,
                                  MachineId::SPARC};
    const PrimitiveCostDb &db = sharedCostDb();
    std::vector<Figure> out;
    for (Primitive p : allPrimitives) {
        for (MachineId m : machines) {
            double paper = PaperPrimitiveData::microseconds(m, p);
            out.push_back(fig(
                "table1",
                std::string(primitiveSlug(p)) + "_us." +
                    machineSlug(m),
                "us", db.micros(m, p),
                paper < 0 ? std::nan("") : paper));
        }
    }
    // The bottom row: application performance relative to the CVAX.
    for (MachineId m : {MachineId::M88000, MachineId::R2000,
                        MachineId::R3000, MachineId::SPARC}) {
        out.push_back(fig("table1",
                          std::string("app_perf_vs_cvax.") +
                              machineSlug(m),
                          "x", db.machine(m).appPerfVsCvax));
    }
    return out;
}

std::vector<Figure>
table2Figures()
{
    ParallelRunner serial(1);
    return table2Figures(serial);
}

std::vector<Figure>
table2Figures(ParallelRunner & /* cells are cheap db reads */)
{
    const MachineId machines[] = {MachineId::CVAX, MachineId::M88000,
                                  MachineId::R2000, MachineId::SPARC,
                                  MachineId::I860};
    const PrimitiveCostDb &db = sharedCostDb();
    std::vector<Figure> out;
    for (Primitive p : allPrimitives) {
        for (MachineId m : machines) {
            std::uint64_t paper =
                PaperPrimitiveData::instructionCount(m, p);
            out.push_back(fig(
                "table2",
                std::string(primitiveSlug(p)) + "_instr." +
                    machineSlug(m),
                "instructions",
                static_cast<double>(db.instructions(m, p)),
                paper == 0 ? std::nan("")
                           : static_cast<double>(paper)));
        }
    }
    return out;
}

std::vector<Figure>
table3Figures()
{
    ParallelRunner serial(1);
    return table3Figures(serial);
}

std::vector<Figure>
table3Figures(ParallelRunner & /* cells are cheap db reads */)
{
    SrcRpcModel model(sharedCostDb().machine(MachineId::CVAX));
    RpcBreakdown small = model.nullRpc();
    RpcBreakdown large = model.roundTrip(74, 1500);

    std::vector<Figure> out;
    auto part = [&](const char *name, double us) {
        out.push_back(fig("table3", std::string(name) + "_us.CVAX",
                          "us", us));
    };
    part("client_stub", small.clientStubUs);
    part("server_stub", small.serverStubUs);
    part("kernel_transfer", small.kernelTransferUs);
    part("interrupt", small.interruptUs);
    part("checksum", small.checksumUs);
    part("copy", small.copyUs);
    part("dispatch", small.dispatchUs);
    part("controller", small.controllerUs);
    part("wire", small.wireUs);
    out.push_back(fig("table3", "null_rpc_total_us.CVAX", "us",
                      small.totalUs()));
    // The prose anchors: wire share ~17% small, ~50% at 1500 bytes.
    out.push_back(fig("table3", "wire_share_small.CVAX", "percent",
                      small.percent(small.wireUs), 17.0));
    out.push_back(fig("table3", "wire_share_1500b.CVAX", "percent",
                      large.percent(large.wireUs), 50.0));
    return out;
}

std::vector<Figure>
table4Figures()
{
    ParallelRunner serial(1);
    return table4Figures(serial);
}

std::vector<Figure>
table4Figures(ParallelRunner &runner)
{
    LrpcModel cvax(sharedCostDb().machine(MachineId::CVAX));
    LrpcBreakdown b = cvax.nullCall();

    std::vector<Figure> out;
    auto part = [&](const char *name, double us) {
        out.push_back(fig("table4", std::string(name) + "_us.CVAX",
                          "us", us));
    };
    part("stubs", b.stubUs);
    part("kernel_entry", b.kernelEntryUs);
    part("validation", b.validationUs);
    part("context_switch", b.contextSwitchUs);
    part("tlb_refill", b.tlbMissUs);
    part("arg_copy", b.argCopyUs);
    out.push_back(fig("table4", "null_lrpc_total_us.CVAX", "us",
                      b.totalUs(), 157.0));
    out.push_back(fig("table4", "hardware_minimum_us.CVAX", "us",
                      b.hardwareMinimumUs(), 109.0));
    out.push_back(fig("table4", "tlb_share.CVAX", "percent",
                      b.tlbPercent(), 25.0));
    // Tagged TLBs keep their entries across the two switches (s3.2).
    // One job per machine; cells land in machine order.
    const std::vector<MachineDesc> &machines = allMachines();
    std::vector<std::function<std::pair<double, double>()>> tasks;
    tasks.reserve(machines.size());
    for (const MachineDesc &md : machines)
        tasks.push_back([&md]() -> std::pair<double, double> {
            LrpcModel model(md);
            LrpcBreakdown lb = model.nullCall();
            return {lb.totalUs(),
                    static_cast<double>(
                        model.steadyStateTlbMisses())};
        });
    auto cells = runner.map<std::pair<double, double>>(tasks);
    for (std::size_t i = 0; i < machines.size(); ++i) {
        const char *slug = machineSlug(machines[i].id);
        out.push_back(fig("table4",
                          std::string("null_lrpc_total_us.") + slug,
                          "us", cells[i].first));
        out.push_back(fig("table4",
                          std::string("tlb_misses_per_call.") + slug,
                          "count", cells[i].second));
    }
    return out;
}

std::vector<Figure>
table5Figures()
{
    ParallelRunner serial(1);
    return table5Figures(serial);
}

std::vector<Figure>
table5Figures(ParallelRunner &runner)
{
    // The paper decomposes CVAX, R2000 and SPARC; the other Table 1
    // machines get the same profiler-derived anatomy with their totals
    // anchored to Table 1's null-syscall times.
    const MachineId machines[] = {MachineId::CVAX, MachineId::M88000,
                                  MachineId::R2000, MachineId::R3000,
                                  MachineId::SPARC};

    auto rows = Study::syscallAnatomy(runner);
    std::vector<Figure> out;
    for (MachineId m : machines) {
        double total = 0;
        for (const auto &r : rows) {
            if (r.machine != m)
                continue;
            total += r.simMicros;
            out.push_back(fig(
                "table5",
                std::string(phaseSlug(r.phase)) + "_us." +
                    machineSlug(m),
                "us", r.simMicros,
                r.paperMicros < 0 ? std::nan("") : r.paperMicros));
        }
        double paper =
            PaperPrimitiveData::microseconds(m,
                                             Primitive::NullSyscall);
        out.push_back(fig("table5",
                          std::string("total_us.") + machineSlug(m),
                          "us", total,
                          paper < 0 ? std::nan("") : paper));
    }
    return out;
}

std::vector<Figure>
table6Figures()
{
    ParallelRunner serial(1);
    return table6Figures(serial);
}

std::vector<Figure>
table6Figures(ParallelRunner & /* cells are cheap db reads */)
{
    struct PaperRow
    {
        MachineId id;
        double regs, fp, misc;
    };
    const PaperRow paper[] = {
        {MachineId::CVAX, 16, 0, 1},
        {MachineId::M88000, 32, 0, 27},
        {MachineId::R2000, 32, 32, 5},
        {MachineId::SPARC, 136, 32, 6},
        {MachineId::I860, 32, 32, 9},
        {MachineId::RS6000, 32, 64, 4},
    };

    auto rows = Study::threadState();
    std::vector<Figure> out;
    for (const auto &r : rows) {
        const PaperRow *p = nullptr;
        for (const auto &pr : paper)
            if (pr.id == r.machine)
                p = &pr;
        const char *slug = machineSlug(r.machine);
        out.push_back(fig("table6",
                          std::string("registers_words.") + slug,
                          "words", r.registers,
                          p ? p->regs : std::nan("")));
        out.push_back(fig("table6",
                          std::string("fp_state_words.") + slug,
                          "words", r.fpState,
                          p ? p->fp : std::nan("")));
        out.push_back(fig("table6",
                          std::string("misc_state_words.") + slug,
                          "words", r.miscState,
                          p ? p->misc : std::nan("")));
    }
    return out;
}

namespace
{

void
table7RowFigures(std::vector<Figure> &out, const Table7Row &r)
{
    Table7Row paper = paperTable7Row(r.app, r.structure);
    bool has_paper = paper.elapsedSeconds > 0;
    const char *os =
        r.structure == OsStructure::Monolithic ? "mach25" : "mach30";
    auto suffix = [&](const char *name) {
        return std::string(name) + "." + r.app + "." + os;
    };
    auto cell = [&](const char *name, const char *unit, double sim,
                    double pap) {
        out.push_back(fig("table7", suffix(name), unit, sim,
                          has_paper ? pap : std::nan("")));
    };
    cell("elapsed", "s", r.elapsedSeconds, paper.elapsedSeconds);
    cell("addr_space_switches", "count",
         static_cast<double>(r.addressSpaceSwitches),
         static_cast<double>(paper.addressSpaceSwitches));
    cell("thread_switches", "count",
         static_cast<double>(r.threadSwitches),
         static_cast<double>(paper.threadSwitches));
    cell("syscalls", "count", static_cast<double>(r.systemCalls),
         static_cast<double>(paper.systemCalls));
    cell("emulated_instrs", "count",
         static_cast<double>(r.emulatedInstructions),
         static_cast<double>(paper.emulatedInstructions));
    cell("kernel_tlb_misses", "count",
         static_cast<double>(r.kernelTlbMisses),
         static_cast<double>(paper.kernelTlbMisses));
    cell("other_exceptions", "count",
         static_cast<double>(r.otherExceptions),
         static_cast<double>(paper.otherExceptions));
    if (r.structure == OsStructure::SmallKernel)
        cell("os_primitive_share", "percent",
             r.percentTimeInPrimitives,
             paper.percentTimeInPrimitives);
}

} // namespace

std::vector<Figure>
table7Figures()
{
    ParallelRunner serial(1);
    return table7Figures(serial);
}

std::vector<Figure>
table7Figures(ParallelRunner &runner)
{
    std::vector<Figure> out;
    for (const Table7Row &r :
         Study::machStudy(MachineId::R3000, runner))
        table7RowFigures(out, r);
    return out;
}

std::vector<Figure>
headlineFigures()
{
    ParallelRunner serial(1);
    return headlineFigures(serial);
}

std::vector<Figure>
headlineFigures(ParallelRunner &runner)
{
    const PrimitiveCostDb &db = sharedCostDb();
    std::vector<Figure> out;

    // s5: andrew-remote address-space-switch inflation, 3.0 vs 2.5,
    // and the SPARC's syscall+switch overhead for the same script.
    auto rows = Study::machStudy(MachineId::R3000, runner);
    double sw25 = 0, sw30 = 0;
    for (const Table7Row &r : rows) {
        if (r.app != "andrew-remote")
            continue;
        double sw = static_cast<double>(r.addressSpaceSwitches);
        if (r.structure == OsStructure::Monolithic)
            sw25 = sw;
        else
            sw30 = sw;
    }
    if (sw25 > 0)
        out.push_back(fig("headlines",
                          "andrew_remote_switch_inflation", "x",
                          sw30 / sw25, 33.0));
    for (const Table7Row &r : rows) {
        if (r.app != "andrew-remote" ||
            r.structure != OsStructure::SmallKernel)
            continue;
        double sparc_s =
            (static_cast<double>(r.systemCalls) *
                 db.micros(MachineId::SPARC,
                           Primitive::NullSyscall) +
             static_cast<double>(r.addressSpaceSwitches) *
                 db.micros(MachineId::SPARC,
                           Primitive::ContextSwitch)) /
            1e6;
        out.push_back(fig("headlines",
                          "sparc_mach30_syscall_switch_overhead", "s",
                          sparc_s, 9.4));
    }

    // s2.3: SPARC register-window share of the null system call.
    {
        const MachineDesc &sparc = db.machine(MachineId::SPARC);
        ExecModel exec(sparc);
        Cycles window = exec.runStream(sparcWindowSaveSeq(sparc)).cycles;
        Cycles total = db.cycles(MachineId::SPARC,
                                 Primitive::NullSyscall);
        out.push_back(fig("headlines", "sparc_window_share", "percent",
                          100.0 * static_cast<double>(window) /
                              static_cast<double>(total),
                          30.0));
    }

    // s2.1: Sun-3/75 -> SPARCstation null-RPC speedup vs the 5x
    // integer speedup (Sprite measured ~2x).
    {
        double sun3 = SrcRpcModel(db.machine(MachineId::SUN3))
                          .nullRpc()
                          .totalUs();
        double sparc = SrcRpcModel(db.machine(MachineId::SPARC))
                           .nullRpc()
                           .totalUs();
        out.push_back(fig("headlines", "sun3_to_sparc_rpc_speedup",
                          "x", sun3 / sparc, 2.0));
    }

    // s3.2: the i860 PTE change is almost entirely cache flushing.
    {
        const HandlerProgram &pte = cachedHandler(
            db.machine(MachineId::I860), Primitive::PteChange);
        std::uint64_t flush_loop = 0;
        for (const auto &ph : pte.phases)
            flush_loop += ph.code.countOf(OpKind::CacheFlushLine);
        out.push_back(fig("headlines", "i860_pte_flush_instrs",
                          "instructions",
                          static_cast<double>(flush_loop * 4), 536.0));
        out.push_back(fig(
            "headlines", "i860_pte_total_instrs", "instructions",
            static_cast<double>(pte.instructionCount()), 559.0));
    }
    return out;
}

std::vector<Figure>
countersFigures()
{
    ParallelRunner serial(1);
    return countersFigures(serial);
}

std::vector<Figure>
countersFigures(ParallelRunner &runner)
{
    // One counted session per (machine, primitive) cell; each cell
    // opens its own counter window, so the grid fans cleanly.
    const std::vector<MachineDesc> &machines = table1Machines();
    std::vector<std::function<double()>> tasks;
    for (const MachineDesc &m : machines)
        for (Primitive p : allPrimitives)
            tasks.push_back([&m, p] {
                return countPrimitive(m, p)
                    .reconciliation.explainedPct();
            });
    std::vector<double> pct = runner.map<double>(tasks);

    std::vector<Figure> out;
    std::size_t i = 0;
    for (const MachineDesc &m : machines)
        for (Primitive p : allPrimitives)
            out.push_back(fig(
                "counters",
                std::string(primitiveSlug(p)) + "_explained_pct." +
                    machineSlug(m.id),
                "percent", pct[i++]));
    return out;
}

std::vector<Figure>
kernelWindowFigures()
{
    ParallelRunner serial(1);
    return kernelWindowFigures(serial);
}

std::vector<Figure>
kernelWindowFigures(ParallelRunner &runner)
{
    // The Table 7 grid again, this time with each cell reconciling
    // counted kernel events x primitive costs against the cycles the
    // kernel actually charged to primitives over the whole run.
    OsModelConfig config;
    config.measureKernelWindow = true;
    MachineDesc machine = makeMachine(MachineId::R3000);

    std::vector<Figure> out;
    for (const Table7Row &r : runMachGrid(machine, runner, config)) {
        const char *os = r.structure == OsStructure::Monolithic
                             ? "mach25"
                             : "mach30";
        out.push_back(fig("counters",
                          std::string("kernel_window_explained_pct.") +
                              r.app + "." + os,
                          "percent", r.kernelWindow.explainedPct()));
    }
    return out;
}

std::vector<Figure>
calibrationFigures()
{
    ParallelRunner serial(1);
    return calibrationFigures(serial);
}

namespace
{

/** TLB misses taken re-establishing a working set after an
 *  address-space switch, averaged over an alternating two-space
 *  scenario (the §3.2 "TLB misses per context switch" rate). */
double
tlbMissesPerSwitch(const MachineDesc &machine)
{
    constexpr std::uint64_t wsetPages = 16;
    constexpr unsigned switches = 128;

    SimKernel kernel(machine);
    AddressSpace &a = kernel.createSpace("calib-a");
    a.setWorkingSet(0x1000, wsetPages);
    a.mapRange(0x1000, wsetPages, 0x10000, {});
    AddressSpace &b = kernel.createSpace("calib-b");
    b.setWorkingSet(0x3000, wsetPages);
    b.mapRange(0x3000, wsetPages, 0x20000, {});

    // Warm both working sets so only switch-induced refills remain.
    kernel.contextSwitchTo(a);
    kernel.touchWorkingSet();
    kernel.contextSwitchTo(b);
    kernel.touchWorkingSet();

    HwCounters &hw = HwCounters::instance();
    bool was_on = hw.enabled();
    hw.enable();
    CounterSet base = hw.snapshot();
    for (unsigned i = 0; i < switches; ++i) {
        kernel.contextSwitchTo(i % 2 == 0 ? a : b);
        kernel.touchWorkingSet();
    }
    CounterSet d = hw.snapshot().delta(base);
    hw.disable();
    hw.reset();
    if (was_on)
        hw.resume();
    return static_cast<double>(d.get(HwCounter::TlbMisses)) /
           switches;
}

} // namespace

std::vector<Figure>
calibrationFigures(ParallelRunner &runner)
{
    const std::vector<MachineDesc> &machines = table1Machines();

    // Every rate is measured in its own counted session, so the cells
    // fan like the counters grid does.
    std::vector<std::function<double()>> tasks;
    for (MachineId m : {MachineId::R2000, MachineId::R3000}) {
        tasks.push_back([m] {
            CountedPrimitiveRun r =
                countPrimitive(makeMachine(m), Primitive::NullSyscall);
            std::uint64_t stores = r.counters.get(HwCounter::WbStores);
            return stores ? static_cast<double>(r.counters.get(
                                HwCounter::WbStalls)) /
                                static_cast<double>(stores)
                          : 0.0;
        });
        tasks.push_back([m] {
            CountedPrimitiveRun r =
                countPrimitive(makeMachine(m), Primitive::NullSyscall);
            std::uint64_t stores = r.counters.get(HwCounter::WbStores);
            return stores ? static_cast<double>(r.counters.get(
                                HwCounter::WbStallCycles)) /
                                static_cast<double>(stores)
                          : 0.0;
        });
    }
    for (const MachineDesc &m : machines)
        tasks.push_back([&m] { return tlbMissesPerSwitch(m); });
    tasks.push_back([] {
        constexpr unsigned reps = 16;
        CountedPrimitiveRun r =
            countPrimitive(makeMachine(MachineId::SPARC),
                           Primitive::ContextSwitch, reps);
        return static_cast<double>(
                   r.counters.get(HwCounter::WindowsSpilled)) /
               reps;
    });
    std::vector<double> vals = runner.map<double>(tasks);

    std::vector<Figure> out;
    std::size_t i = 0;
    for (MachineId m : {MachineId::R2000, MachineId::R3000}) {
        out.push_back(fig("calibration",
                          std::string("wb_stalls_per_store.") +
                              machineSlug(m),
                          "x", vals[i++]));
        out.push_back(fig("calibration",
                          std::string("wb_stall_cycles_per_store.") +
                              machineSlug(m),
                          "x", vals[i++]));
    }
    for (const MachineDesc &m : machines)
        out.push_back(fig("calibration",
                          std::string("tlb_misses_per_context_switch.") +
                              machineSlug(m.id),
                          "x", vals[i++]));
    out.push_back(fig("calibration",
                      "window_spills_per_context_switch.SPARC", "x",
                      vals[i++]));
    return out;
}

std::vector<Figure>
allFigures()
{
    ParallelRunner serial(1);
    return allFigures(serial);
}

std::vector<Figure>
allFigures(ParallelRunner &runner)
{
    using Builder = std::vector<Figure> (*)(ParallelRunner &);
    std::vector<Figure> out;
    for (Builder fn :
         {static_cast<Builder>(table1Figures),
          static_cast<Builder>(table2Figures),
          static_cast<Builder>(table3Figures),
          static_cast<Builder>(table4Figures),
          static_cast<Builder>(table5Figures),
          static_cast<Builder>(table6Figures),
          static_cast<Builder>(table7Figures),
          static_cast<Builder>(headlineFigures),
          static_cast<Builder>(countersFigures),
          static_cast<Builder>(kernelWindowFigures),
          static_cast<Builder>(calibrationFigures)}) {
        auto part = fn(runner);
        out.insert(out.end(), part.begin(), part.end());
    }
    return out;
}

} // namespace aosd
