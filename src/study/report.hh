/**
 * @file
 * report.json: one machine-readable document holding every simulated
 * figure of the reproduction next to its paper value.
 *
 * Schema (version 1):
 *
 *   {
 *     "schema_version": 1,
 *     "generator": "aosd_report",
 *     "paper": "...",
 *     "machine_count": N,
 *     "tables": {
 *       "table1": {"figures": [
 *           {"id": "null_syscall_us.CVAX", "unit": "us",
 *            "sim": 17.3, "paper": 17.0, "rel_error": 0.018},
 *           ...]},
 *       ...
 *       "headlines": {"figures": [...]}
 *     },
 *     "summary": {
 *       "figures": N, "with_paper": M,
 *       "mean_abs_rel_error": x, "max_abs_rel_error": y,
 *       "worst_figure": "table.id"
 *     }
 *   }
 *
 * "paper"/"rel_error" are omitted for cells the paper leaves blank.
 * The schema is append-only: new figures may be added, existing ids
 * keep their meaning (the regression gate depends on it).
 */

#ifndef AOSD_STUDY_REPORT_HH
#define AOSD_STUDY_REPORT_HH

#include <vector>

#include "sim/json.hh"
#include "study/figures.hh"

namespace aosd
{

/** Current report schema version. */
inline constexpr int reportSchemaVersion = 1;

/** Serialize one figure (id/unit/sim[/paper/rel_error]). */
Json figureToJson(const Figure &f);

/** Group figures by table into the full report document. */
Json buildReport(const std::vector<Figure> &figures);

/** buildReport(allFigures()). */
Json buildReport();

class ParallelRunner;

/** buildReport(allFigures(runner)) — the same document, with the
 *  figure grid fanned across the runner's workers. Byte-identical to
 *  the serial build at any job count (see
 *  sim/parallel/parallel_runner.hh for why). */
Json buildReport(ParallelRunner &runner);

/**
 * Compare a freshly built report against an expected snapshot.
 * Returns human-readable mismatch lines (empty == pass): figures
 * whose sim value drifted by more than `rel_tolerance` relative (or
 * `abs_tolerance` absolute, for values near zero), figures missing
 * from either side, and schema mismatches.
 */
std::vector<std::string> diffReports(const Json &expected,
                                     const Json &actual,
                                     double rel_tolerance = 1e-6,
                                     double abs_tolerance = 1e-9);

} // namespace aosd

#endif // AOSD_STUDY_REPORT_HH
