#include "study/profile_report.hh"

#include <functional>
#include <utility>

#include "arch/machines.hh"
#include "sim/parallel/parallel_runner.hh"

namespace aosd
{

std::vector<ProfiledPrimitiveRun>
profileAllPrimitives(const std::vector<MachineDesc> &machines,
                     unsigned reps)
{
    ParallelRunner serial(1);
    return profileAllPrimitives(machines, reps, serial);
}

std::vector<ProfiledPrimitiveRun>
profileAllPrimitives(const std::vector<MachineDesc> &machines,
                     unsigned reps, ParallelRunner &runner)
{
    std::vector<std::function<ProfiledPrimitiveRun()>> tasks;
    tasks.reserve(machines.size() * std::size(allPrimitives));
    for (const MachineDesc &m : machines)
        for (Primitive p : allPrimitives)
            tasks.push_back(
                [&m, p, reps] { return profilePrimitive(m, p, reps); });
    return runner.map<ProfiledPrimitiveRun>(tasks);
}

Json
buildProfileDoc(const std::vector<MachineDesc> &machines,
                const std::vector<ProfiledPrimitiveRun> &runs,
                unsigned reps)
{
    Json doc = Json::object();
    doc.set("schema_version", 1);
    doc.set("generator", "aosd_profile");
    doc.set("repetitions", static_cast<std::uint64_t>(reps));

    Json machines_json = Json::object();
    Json anatomy = Json::object();

    std::size_t next = 0;
    for (const MachineDesc &m : machines) {
        Json machine_json = Json::object();
        for (Primitive p : allPrimitives) {
            const ProfiledPrimitiveRun &run = runs.at(next++);
            double per_call = static_cast<double>(run.totalCycles) /
                              static_cast<double>(reps);

            Json prim = Json::object();
            prim.set("cycles_per_call", per_call);
            prim.set("us_per_call", m.clock.cyclesToMicros(
                                        static_cast<Cycles>(
                                            per_call + 0.5)));
            prim.set("total_cycles", run.totalCycles);
            prim.set("attributed_cycles", run.attributedCycles);
            prim.set("attribution_complete", run.complete());
            prim.set("tree", run.tree);
            machine_json.set(primitiveSlug(p), std::move(prim));

            if (p == Primitive::NullSyscall) {
                Json rows = Json::object();
                double total = 0;
                for (PhaseKind ph : {PhaseKind::KernelEntryExit,
                                     PhaseKind::CallPrep,
                                     PhaseKind::CCallReturn}) {
                    double us = m.clock.cyclesToMicros(
                                    run.phaseCycles(ph)) /
                                static_cast<double>(reps);
                    rows.set(std::string(phaseSlug(ph)) + "_us", us);
                    total += us;
                }
                rows.set("total_us", total);
                anatomy.set(machineSlug(m.id), std::move(rows));
            }
        }
        machines_json.set(machineSlug(m.id), std::move(machine_json));
    }

    doc.set("machines", std::move(machines_json));
    doc.set("table5_anatomy", std::move(anatomy));
    return doc;
}

std::string
foldedStacks(const std::vector<ProfiledPrimitiveRun> &runs)
{
    std::string folded;
    for (const ProfiledPrimitiveRun &run : runs)
        folded += run.folded;
    return folded;
}

} // namespace aosd
