#include "core/study.hh"

#include "arch/machines.hh"
#include "cpu/primitive_costs.hh"
#include "cpu/profiled_primitives.hh"
#include "os/threads/thread.hh"
#include "workload/app_profile.hh"

namespace aosd
{

std::vector<PrimitiveResult>
Study::primitives()
{
    const PrimitiveCostDb &db = sharedCostDb();
    std::vector<PrimitiveResult> out;
    for (const MachineDesc &m : allMachines()) {
        for (Primitive p : allPrimitives) {
            PrimitiveResult r;
            r.machine = m.id;
            r.machineName = m.name;
            r.primitive = p;
            r.simMicros = db.micros(m.id, p);
            r.paperMicros = PaperPrimitiveData::microseconds(m.id, p);
            r.simInstructions = db.instructions(m.id, p);
            r.paperInstructions =
                PaperPrimitiveData::instructionCount(m.id, p);
            r.relativeToCvax = db.relativeToCvax(m.id, p);
            out.push_back(r);
        }
    }
    return out;
}

RpcBreakdown
Study::srcRpc(MachineId m, std::uint32_t arg_bytes,
              std::uint32_t result_bytes)
{
    SrcRpcModel model(sharedCostDb().machine(m));
    return model.roundTrip(arg_bytes, result_bytes);
}

LrpcBreakdown
Study::lrpc(MachineId m)
{
    LrpcModel model(sharedCostDb().machine(m));
    return model.nullCall();
}

std::vector<SyscallPhaseResult>
Study::syscallAnatomy()
{
    // The anatomy is read off the cycle-attribution profiler rather
    // than assembled by hand: each phase row is the inclusive total of
    // the corresponding top-level node in the null-syscall attribution
    // tree, so Table 5 and profile.json can never disagree.
    const PhaseKind phases[] = {PhaseKind::KernelEntryExit,
                                PhaseKind::CallPrep,
                                PhaseKind::CCallReturn};
    std::vector<SyscallPhaseResult> out;
    for (const MachineDesc &m : allMachines()) {
        ProfiledPrimitiveRun run =
            profilePrimitive(m, Primitive::NullSyscall);
        for (PhaseKind ph : phases) {
            SyscallPhaseResult r;
            r.machine = m.id;
            r.machineName = m.name;
            r.phase = ph;
            r.simMicros = m.clock.cyclesToMicros(run.phaseCycles(ph));
            r.paperMicros = PaperPrimitiveData::table5Micros(m.id, ph);
            out.push_back(r);
        }
    }
    return out;
}

std::vector<ThreadStateResult>
Study::threadState()
{
    std::vector<ThreadStateResult> out;
    for (const MachineDesc &m : table6Machines()) {
        ThreadStateResult r;
        r.machine = m.id;
        r.machineName = m.name;
        r.registers = m.intRegs;
        r.fpState = m.fpStateWords;
        r.miscState = m.miscStateWords;
        out.push_back(r);
    }
    return out;
}

std::vector<Table7Row>
Study::machStudy(MachineId m)
{
    const MachineDesc &machine = sharedCostDb().machine(m);
    std::vector<Table7Row> rows;
    for (OsStructure s :
         {OsStructure::Monolithic, OsStructure::SmallKernel}) {
        MachSystem system(machine, s);
        for (const AppProfile &app : table7Workloads())
            rows.push_back(system.run(app));
    }
    return rows;
}

Table7Row
Study::machRow(const std::string &workload, OsStructure structure,
               MachineId m)
{
    MachSystem system(sharedCostDb().machine(m), structure);
    return system.run(workloadByName(workload));
}

} // namespace aosd
