#include "core/study.hh"

#include "arch/machines.hh"
#include "cpu/primitive_costs.hh"
#include "cpu/profiled_primitives.hh"
#include "os/threads/thread.hh"
#include "sim/parallel/parallel_runner.hh"
#include "workload/app_profile.hh"

namespace aosd
{

std::vector<PrimitiveResult>
Study::primitives()
{
    const PrimitiveCostDb &db = sharedCostDb();
    std::vector<PrimitiveResult> out;
    for (const MachineDesc &m : allMachines()) {
        for (Primitive p : allPrimitives) {
            PrimitiveResult r;
            r.machine = m.id;
            r.machineName = m.name;
            r.primitive = p;
            r.simMicros = db.micros(m.id, p);
            r.paperMicros = PaperPrimitiveData::microseconds(m.id, p);
            r.simInstructions = db.instructions(m.id, p);
            r.paperInstructions =
                PaperPrimitiveData::instructionCount(m.id, p);
            r.relativeToCvax = db.relativeToCvax(m.id, p);
            out.push_back(r);
        }
    }
    return out;
}

RpcBreakdown
Study::srcRpc(MachineId m, std::uint32_t arg_bytes,
              std::uint32_t result_bytes)
{
    SrcRpcModel model(sharedCostDb().machine(m));
    return model.roundTrip(arg_bytes, result_bytes);
}

LrpcBreakdown
Study::lrpc(MachineId m)
{
    LrpcModel model(sharedCostDb().machine(m));
    return model.nullCall();
}

std::vector<SyscallPhaseResult>
Study::syscallAnatomy()
{
    ParallelRunner serial(1);
    return syscallAnatomy(serial);
}

std::vector<SyscallPhaseResult>
Study::syscallAnatomy(ParallelRunner &runner)
{
    // The anatomy is read off the cycle-attribution profiler rather
    // than assembled by hand: each phase row is the inclusive total of
    // the corresponding top-level node in the null-syscall attribution
    // tree, so Table 5 and profile.json can never disagree. One
    // profiled run per machine, fanned across the runner; rows are
    // assembled in machine order, so the output matches the serial
    // loop exactly.
    const PhaseKind phases[] = {PhaseKind::KernelEntryExit,
                                PhaseKind::CallPrep,
                                PhaseKind::CCallReturn};
    const std::vector<MachineDesc> &machines = allMachines();
    std::vector<std::function<ProfiledPrimitiveRun()>> tasks;
    tasks.reserve(machines.size());
    for (const MachineDesc &m : machines)
        tasks.push_back([&m] {
            return profilePrimitive(m, Primitive::NullSyscall);
        });
    std::vector<ProfiledPrimitiveRun> runs =
        runner.map<ProfiledPrimitiveRun>(tasks);

    std::vector<SyscallPhaseResult> out;
    for (std::size_t i = 0; i < machines.size(); ++i) {
        const MachineDesc &m = machines[i];
        for (PhaseKind ph : phases) {
            SyscallPhaseResult r;
            r.machine = m.id;
            r.machineName = m.name;
            r.phase = ph;
            r.simMicros =
                m.clock.cyclesToMicros(runs[i].phaseCycles(ph));
            r.paperMicros = PaperPrimitiveData::table5Micros(m.id, ph);
            out.push_back(r);
        }
    }
    return out;
}

std::vector<ThreadStateResult>
Study::threadState()
{
    std::vector<ThreadStateResult> out;
    for (const MachineDesc &m : table6Machines()) {
        ThreadStateResult r;
        r.machine = m.id;
        r.machineName = m.name;
        r.registers = m.intRegs;
        r.fpState = m.fpStateWords;
        r.miscState = m.miscStateWords;
        out.push_back(r);
    }
    return out;
}

std::vector<Table7Row>
Study::machStudy(MachineId m)
{
    ParallelRunner serial(1);
    return machStudy(m, serial);
}

std::vector<Table7Row>
Study::machStudy(MachineId m, ParallelRunner &runner)
{
    return runMachGrid(sharedCostDb().machine(m), runner);
}

Table7Row
Study::machRow(const std::string &workload, OsStructure structure,
               MachineId m)
{
    MachSystem system(sharedCostDb().machine(m), structure);
    return system.run(workloadByName(workload));
}

} // namespace aosd
