/**
 * @file
 * Study: one call per paper table.
 *
 * Each method runs the relevant simulation and returns structured
 * results (used by the bench binaries, which add the paper's numbers
 * alongside, and available to library users directly).
 */

#ifndef AOSD_CORE_STUDY_HH
#define AOSD_CORE_STUDY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "arch/machine_desc.hh"
#include "arch/isa.hh"
#include "os/ipc/lrpc.hh"
#include "os/ipc/rpc.hh"
#include "workload/os_model.hh"

namespace aosd
{

class ParallelRunner;

/** Table 1/2 cell: one primitive on one machine. */
struct PrimitiveResult
{
    MachineId machine;
    std::string machineName;
    Primitive primitive;
    double simMicros = 0;
    double paperMicros = -1; ///< <0 when the paper has none
    std::uint64_t simInstructions = 0;
    std::uint64_t paperInstructions = 0; ///< 0 when the paper has none
    double relativeToCvax = 0;
};

/** Table 5 cell: one null-syscall phase on one machine. */
struct SyscallPhaseResult
{
    MachineId machine;
    std::string machineName;
    PhaseKind phase;
    double simMicros = 0;
    double paperMicros = -1;
};

/** Table 6 row. */
struct ThreadStateResult
{
    MachineId machine;
    std::string machineName;
    std::uint32_t registers = 0;
    std::uint32_t fpState = 0;
    std::uint32_t miscState = 0;
};

/** High-level entry points, one per paper table. */
class Study
{
  public:
    /** Table 1 + Table 2 data for every machine. */
    static std::vector<PrimitiveResult> primitives();

    /** Table 3: SRC RPC distribution on a machine (default CVAX). */
    static RpcBreakdown srcRpc(MachineId m = MachineId::CVAX,
                               std::uint32_t arg_bytes = 74,
                               std::uint32_t result_bytes = 74);

    /** Table 4: LRPC distribution on a machine (default CVAX). */
    static LrpcBreakdown lrpc(MachineId m = MachineId::CVAX);

    /** Table 5: null-syscall phase decomposition. */
    static std::vector<SyscallPhaseResult> syscallAnatomy();

    /** syscallAnatomy with one profiled run per machine fanned
     *  across `runner` (results in machine order regardless of
     *  completion order). */
    static std::vector<SyscallPhaseResult>
    syscallAnatomy(ParallelRunner &runner);

    /** Table 6: thread state sizes. */
    static std::vector<ThreadStateResult> threadState();

    /** Table 7: run every workload on both OS structures.
     *  Machine defaults to the paper's DECstation 5000/200. */
    static std::vector<Table7Row>
    machStudy(MachineId m = MachineId::R3000);

    /** machStudy with one (structure, app) cell per runner job. */
    static std::vector<Table7Row> machStudy(MachineId m,
                                            ParallelRunner &runner);

    /** One Table 7 row. */
    static Table7Row machRow(const std::string &workload,
                             OsStructure structure,
                             MachineId m = MachineId::R3000);
};

} // namespace aosd

#endif // AOSD_CORE_STUDY_HH
