/**
 * @file
 * Umbrella header: the public API of the AOSD library.
 *
 * AOSD ("Architecture and Operating System Design") reproduces
 * Anderson, Levy, Bershad & Lazowska, "The Interaction of Architecture
 * and Operating System Design", ASPLOS 1991, as a simulation library:
 *
 *   - machine models of the paper's processors (arch/, cpu/, mem/),
 *   - an instrumented OS substrate (os/kernel, os/vm, os/ipc,
 *     os/threads) over a network model (net/),
 *   - workload engines for the paper's measurements (workload/), and
 *   - a high-level Study API (core/study.hh) that regenerates every
 *     table of the paper programmatically.
 */

#ifndef AOSD_CORE_AOSD_HH
#define AOSD_CORE_AOSD_HH

#include "arch/isa.hh"
#include "arch/machine_desc.hh"
#include "arch/machines.hh"
#include "core/study.hh"
#include "cpu/decoded_program.hh"
#include "cpu/exec_model.hh"
#include "cpu/handler_variants.hh"
#include "cpu/handlers.hh"
#include "cpu/primitive_costs.hh"
#include "cpu/profiled_primitives.hh"
#include "mem/cache.hh"
#include "mem/page_table.hh"
#include "mem/phys_mem.hh"
#include "mem/tlb.hh"
#include "mem/write_buffer.hh"
#include "net/ethernet.hh"
#include "net/network.hh"
#include "os/ipc/binding.hh"
#include "os/ipc/lrpc.hh"
#include "os/ipc/message.hh"
#include "os/ipc/ports.hh"
#include "os/ipc/rpc.hh"
#include "os/ipc/rpc_sim.hh"
#include "os/ipc/urpc.hh"
#include "os/kernel/address_space.hh"
#include "os/kernel/kernel.hh"
#include "os/kernel/scheduler.hh"
#include "os/threads/activations.hh"
#include "os/threads/sync.hh"
#include "os/threads/thread.hh"
#include "os/threads/multiprocessor.hh"
#include "os/threads/thread_package.hh"
#include "os/vm/dsm.hh"
#include "os/vm/vm_clients.hh"
#include "os/vm/vm_manager.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/profile/profile.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/table.hh"
#include "sim/ticks.hh"
#include "workload/app_profile.hh"
#include "workload/os_model.hh"
#include "workload/ref_trace.hh"
#include "workload/synapse.hh"

#endif // AOSD_CORE_AOSD_HH
