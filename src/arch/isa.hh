/**
 * @file
 * Micro-operation ISA for handler programs.
 *
 * The paper measures hand-written assembler trap/syscall/PTE/context-switch
 * drivers on five machines. We represent each driver as an InstrStream of
 * typed micro-ops; the execution model (src/cpu/exec_model.hh) charges
 * cycles per op against stateful memory-system components. Table 2's
 * dynamic instruction counts are reproduced by construction: each op
 * declares how many architectural instructions it represents.
 */

#ifndef AOSD_ARCH_ISA_HH
#define AOSD_ARCH_ISA_HH

#include <cstdint>
#include <string>
#include <vector>

namespace aosd
{

/** Classes of micro-operation a handler program can contain. */
enum class OpKind
{
    Alu,             ///< single-cycle integer op (incl. shifts, compares)
    Nop,             ///< unfilled delay slot / explicit no-op
    Branch,          ///< branch or jump (delay slot modelled as Nop/Alu)
    Load,            ///< memory load through the cache
    Store,           ///< memory store through the write buffer
    TrapEnter,       ///< hardware exception/trap entry (instruction on CISC)
    TrapReturn,      ///< return-from-exception (REI / rfe+jr / rett)
    CtrlRegRead,     ///< read of a privileged/pipeline control register
    CtrlRegWrite,    ///< write of a privileged/pipeline control register
    TlbWrite,        ///< insert/replace one TLB entry (tlbwr / MTPR)
    TlbProbe,        ///< probe TLB for a VA (tlbp)
    TlbPurgeEntry,   ///< invalidate one TLB entry (TBIS)
    TlbPurgeAll,     ///< invalidate the whole TLB (TBIA / context change)
    CacheFlushLine,  ///< flush/invalidate one cache line (virtual caches)
    CacheFlushAll,   ///< flush the entire cache
    Microcoded,      ///< CISC instruction with an explicit microcode cost
    AtomicOp,        ///< interlocked memory op (test&set, xmem, ldstub)
    FpuSync,         ///< drain/restart a frozen FP pipeline (88000, i860)
    WindowOverflowTrap,  ///< SPARC register-window overflow trap entry
    WindowUnderflowTrap, ///< SPARC register-window underflow trap entry
};

/** One micro-op (possibly repeated `count` times back to back). */
struct Op
{
    OpKind kind = OpKind::Alu;
    /** Number of back-to-back repetitions of this op. */
    std::uint32_t count = 1;
    /** Explicit cycle cost for Microcoded / FpuSync ops (per repetition). */
    std::uint32_t cycles = 0;
    /** Load/Store: bypasses the cache (I/O buffers, CMMU registers). */
    bool uncached = false;
    /** Load: guaranteed cache miss (cold context, e.g. after a switch). */
    bool coldMiss = false;
    /** Store: falls on the same DRAM page as the previous store. */
    bool samePage = true;
    /**
     * Whether each repetition counts as an architectural instruction.
     * Hardware trap entry on RISCs is an event, not an instruction;
     * on the VAX the CHMK/REI microcoded instructions do count.
     */
    bool countsAsInstr = true;
};

/**
 * A straight-line sequence of micro-ops. Builder methods return *this so
 * handler programs read like annotated assembler listings.
 */
class InstrStream
{
  public:
    InstrStream &push(Op op);

    InstrStream &alu(std::uint32_t n = 1);
    InstrStream &nop(std::uint32_t n = 1);
    InstrStream &branch(std::uint32_t n = 1);
    InstrStream &load(std::uint32_t n = 1, bool cold_miss = false);
    InstrStream &loadUncached(std::uint32_t n = 1);
    InstrStream &store(std::uint32_t n = 1, bool same_page = true);
    InstrStream &storeUncached(std::uint32_t n = 1);
    InstrStream &trapEnter(bool counts_as_instr);
    InstrStream &trapReturn();
    /** Register-window overflow/underflow trap entry: costs exactly a
     *  hardware trap entry (and is an event, not an instruction), but
     *  is distinguishable so the tracer and the performance counters
     *  see the paper's SPARC cost driver. */
    InstrStream &windowOverflowTrap();
    InstrStream &windowUnderflowTrap();
    InstrStream &ctrlRead(std::uint32_t n = 1);
    InstrStream &ctrlWrite(std::uint32_t n = 1);
    InstrStream &tlbWrite(std::uint32_t n = 1);
    InstrStream &tlbProbe(std::uint32_t n = 1);
    InstrStream &tlbPurgeEntry(std::uint32_t n = 1);
    InstrStream &tlbPurgeAll();
    InstrStream &cacheFlushLine(std::uint32_t n = 1);
    InstrStream &cacheFlushAll();
    InstrStream &microcoded(std::uint32_t cycles, std::uint32_t n = 1);
    InstrStream &atomicOp(std::uint32_t n = 1);
    InstrStream &fpuSync(std::uint32_t cycles);
    /** Pure hardware latency (exception entry slip, memory refresh,
     *  hardware-assisted flush): costs cycles but is not an instruction. */
    InstrStream &hwDelay(std::uint32_t cycles);

    /** Append another stream. */
    InstrStream &append(const InstrStream &other);

    const std::vector<Op> &ops() const { return opList; }

    /** Total architectural instructions represented. */
    std::uint64_t instructionCount() const;

    /** Totals by kind (for tests and introspection). */
    std::uint64_t countOf(OpKind kind) const;

  private:
    std::vector<Op> opList;
};

/** The four primitive operations measured in Tables 1, 2 and 5. */
enum class Primitive
{
    NullSyscall,
    Trap,
    PteChange,
    ContextSwitch,
};

constexpr const char *
primitiveName(Primitive p)
{
    switch (p) {
      case Primitive::NullSyscall: return "Null system call";
      case Primitive::Trap: return "Trap";
      case Primitive::PteChange: return "Page table entry change";
      case Primitive::ContextSwitch: return "Context switch";
    }
    return "?";
}

/** Identifier-safe slug (figure ids, profiler frames). */
constexpr const char *
primitiveSlug(Primitive p)
{
    switch (p) {
      case Primitive::NullSyscall: return "null_syscall";
      case Primitive::Trap: return "trap";
      case Primitive::PteChange: return "pte_change";
      case Primitive::ContextSwitch: return "context_switch";
    }
    return "unknown";
}

/** All primitives, in paper order. */
inline const Primitive allPrimitives[] = {
    Primitive::NullSyscall,
    Primitive::Trap,
    Primitive::PteChange,
    Primitive::ContextSwitch,
};

/**
 * Phases of a handler program. Table 5 decomposes the null system call
 * into kernel entry/exit, call preparation and the C call/return; other
 * primitives use Body.
 */
enum class PhaseKind
{
    KernelEntryExit,
    CallPrep,
    CCallReturn,
    Body,
};

constexpr const char *
phaseName(PhaseKind p)
{
    switch (p) {
      case PhaseKind::KernelEntryExit: return "Kernel entry/exit";
      case PhaseKind::CallPrep: return "Call preparation";
      case PhaseKind::CCallReturn: return "Call/return to C";
      case PhaseKind::Body: return "Body";
    }
    return "?";
}

/** Identifier-safe slug (figure ids, profiler frames). */
constexpr const char *
phaseSlug(PhaseKind p)
{
    switch (p) {
      case PhaseKind::KernelEntryExit: return "kernel_entry_exit";
      case PhaseKind::CallPrep: return "call_prep";
      case PhaseKind::CCallReturn: return "c_call_return";
      case PhaseKind::Body: return "body";
    }
    return "unknown";
}

/** A phase: a labelled instruction stream. */
struct Phase
{
    PhaseKind kind;
    InstrStream code;
};

/** A complete handler program for one primitive on one machine. */
struct HandlerProgram
{
    Primitive primitive;
    std::vector<Phase> phases;

    std::uint64_t
    instructionCount() const
    {
        std::uint64_t n = 0;
        for (const auto &p : phases)
            n += p.code.instructionCount();
        return n;
    }
};

} // namespace aosd

#endif // AOSD_ARCH_ISA_HH
