#include "arch/isa.hh"

namespace aosd
{

InstrStream &
InstrStream::push(Op op)
{
    if (op.count > 0)
        opList.push_back(op);
    return *this;
}

InstrStream &
InstrStream::alu(std::uint32_t n)
{
    return push({OpKind::Alu, n});
}

InstrStream &
InstrStream::nop(std::uint32_t n)
{
    return push({OpKind::Nop, n});
}

InstrStream &
InstrStream::branch(std::uint32_t n)
{
    return push({OpKind::Branch, n});
}

InstrStream &
InstrStream::load(std::uint32_t n, bool cold_miss)
{
    Op op{OpKind::Load, n};
    op.coldMiss = cold_miss;
    return push(op);
}

InstrStream &
InstrStream::loadUncached(std::uint32_t n)
{
    Op op{OpKind::Load, n};
    op.uncached = true;
    return push(op);
}

InstrStream &
InstrStream::store(std::uint32_t n, bool same_page)
{
    Op op{OpKind::Store, n};
    op.samePage = same_page;
    return push(op);
}

InstrStream &
InstrStream::storeUncached(std::uint32_t n)
{
    Op op{OpKind::Store, n};
    op.uncached = true;
    return push(op);
}

InstrStream &
InstrStream::trapEnter(bool counts_as_instr)
{
    Op op{OpKind::TrapEnter, 1};
    op.countsAsInstr = counts_as_instr;
    return push(op);
}

InstrStream &
InstrStream::trapReturn()
{
    return push({OpKind::TrapReturn, 1});
}

InstrStream &
InstrStream::windowOverflowTrap()
{
    Op op{OpKind::WindowOverflowTrap, 1};
    op.countsAsInstr = false; // hardware event, like trapEnter(false)
    return push(op);
}

InstrStream &
InstrStream::windowUnderflowTrap()
{
    Op op{OpKind::WindowUnderflowTrap, 1};
    op.countsAsInstr = false;
    return push(op);
}

InstrStream &
InstrStream::ctrlRead(std::uint32_t n)
{
    return push({OpKind::CtrlRegRead, n});
}

InstrStream &
InstrStream::ctrlWrite(std::uint32_t n)
{
    return push({OpKind::CtrlRegWrite, n});
}

InstrStream &
InstrStream::tlbWrite(std::uint32_t n)
{
    return push({OpKind::TlbWrite, n});
}

InstrStream &
InstrStream::tlbProbe(std::uint32_t n)
{
    return push({OpKind::TlbProbe, n});
}

InstrStream &
InstrStream::tlbPurgeEntry(std::uint32_t n)
{
    return push({OpKind::TlbPurgeEntry, n});
}

InstrStream &
InstrStream::tlbPurgeAll()
{
    return push({OpKind::TlbPurgeAll, 1});
}

InstrStream &
InstrStream::cacheFlushLine(std::uint32_t n)
{
    return push({OpKind::CacheFlushLine, n});
}

InstrStream &
InstrStream::cacheFlushAll()
{
    return push({OpKind::CacheFlushAll, 1});
}

InstrStream &
InstrStream::microcoded(std::uint32_t cycles, std::uint32_t n)
{
    Op op{OpKind::Microcoded, n};
    op.cycles = cycles;
    return push(op);
}

InstrStream &
InstrStream::atomicOp(std::uint32_t n)
{
    return push({OpKind::AtomicOp, n});
}

InstrStream &
InstrStream::fpuSync(std::uint32_t cycles)
{
    Op op{OpKind::FpuSync, 1};
    op.cycles = cycles;
    // Draining a pipeline is an event, not an instruction; the
    // instructions doing the draining are listed explicitly by handlers.
    op.countsAsInstr = false;
    return push(op);
}

InstrStream &
InstrStream::hwDelay(std::uint32_t cycles)
{
    Op op{OpKind::Microcoded, 1};
    op.cycles = cycles;
    op.countsAsInstr = false;
    return push(op);
}

InstrStream &
InstrStream::append(const InstrStream &other)
{
    for (const auto &op : other.opList)
        opList.push_back(op);
    return *this;
}

std::uint64_t
InstrStream::instructionCount() const
{
    std::uint64_t n = 0;
    for (const auto &op : opList)
        if (op.countsAsInstr)
            n += op.count;
    return n;
}

std::uint64_t
InstrStream::countOf(OpKind kind) const
{
    std::uint64_t n = 0;
    for (const auto &op : opList)
        if (op.kind == kind)
            n += op.count;
    return n;
}

} // namespace aosd
