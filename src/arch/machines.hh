/**
 * @file
 * Factory for the machine models the paper measures or estimates:
 * CVAX (VAXstation 3200), Motorola 88000 (Tektronix XD88/01), MIPS R2000
 * (DECstation 3100), MIPS R3000 (DECstation 5000/200), Sun SPARC
 * (SPARCstation 1+), Intel i860, and IBM RS/6000.
 */

#ifndef AOSD_ARCH_MACHINES_HH
#define AOSD_ARCH_MACHINES_HH

#include <string>
#include <vector>

#include "arch/machine_desc.hh"

namespace aosd
{

/** Build the description for one machine. */
MachineDesc makeMachine(MachineId id);

/** Identifier-safe slug (figure ids, profiler frames, CLI args). */
const char *machineSlug(MachineId id);

/** Inverse of machineSlug; fatal on an unknown slug. */
MachineId machineFromSlug(const std::string &slug);

/** The five machines with timing data in Table 1, in paper order. */
std::vector<MachineDesc> table1Machines();

/** The machines with instruction counts in Table 2 (adds the i860). */
std::vector<MachineDesc> table2Machines();

/** The machines with thread-state data in Table 6 (adds the RS6000). */
std::vector<MachineDesc> table6Machines();

/** Every machine model in the library. */
std::vector<MachineDesc> allMachines();

} // namespace aosd

#endif // AOSD_ARCH_MACHINES_HH
