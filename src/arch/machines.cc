#include "arch/machines.hh"

#include "sim/logging.hh"

namespace aosd
{

namespace
{

MachineDesc
makeCvax()
{
    MachineDesc m;
    m.id = MachineId::CVAX;
    m.name = "CVAX";
    m.system = "VAXstation 3200";
    m.clock = Clock::fromMHz(11.1);

    // Table 6: 16 registers, no separate FP state saved for integer
    // processes, 1 misc word (PSL).
    m.intRegs = 16;
    m.fpStateWords = 0;
    m.miscStateWords = 1;

    m.delaySlots = 0;
    m.vectoring = TrapVectoring::Microcoded;
    m.hasAtomicOp = true; // BBSSI/ADAWI interlocked instructions
    m.providesFaultAddress = true;
    m.microcoded = true;

    // Board-level cache, physically addressed, write-through with a
    // single-entry write latch; microcode hides most store latency.
    m.cache.indexing = CacheIndexing::Physical;
    m.cache.policy = WritePolicy::WriteThrough;
    m.cache.sizeBytes = 64 * 1024;
    m.cache.lineBytes = 8;
    m.cache.missPenaltyCycles = 10;
    m.cache.uncachedCycles = 12;
    m.writeBuffer = {1, 4, false, 4};

    // CVAX on-chip translation buffer: 28 fully-associative entries,
    // untagged (LDPCTX purges the per-process half), hardware-refilled
    // from the linear VAX page tables.
    m.tlb.entries = 28;
    m.tlb.processIdTags = false;
    m.tlb.management = TlbManagement::Hardware;
    m.tlb.hwMissCycles = 22;
    m.tlb.purgeEntryCycles = 25; // TBIS microcode
    m.tlb.purgeAllCycles = 32;   // TBIA microcode
    m.tlb.writeEntryCycles = 10;

    // CHMK/REI microcode: kernel entry/exit is 4.5 us total (Table 5).
    m.timing.trapEnterCycles = 28;
    m.timing.trapReturnCycles = 22;
    m.timing.ctrlRegCycles = 10; // MTPR/MFPR

    m.appPerfVsCvax = 1.0;
    return m;
}

MachineDesc
make88000()
{
    MachineDesc m;
    m.id = MachineId::M88000;
    m.name = "88000";
    m.system = "Tektronix XD88/01";
    m.clock = Clock::fromMHz(20.0);

    // Table 6: 32 registers, FP shares the general file, 27 misc words
    // of exposed pipeline/scoreboard state.
    m.intRegs = 32;
    m.fpStateWords = 0;
    m.miscStateWords = 27;

    m.delaySlots = 1;
    m.unfilledDelaySlotFraction = 0.3;
    m.vectoring = TrapVectoring::DirectVectored;
    m.hasAtomicOp = true; // xmem
    m.providesFaultAddress = true;

    // 5 exposed internal pipelines; the handler must read/restore ~27
    // internal registers, and the FPU freezes on faults and must be
    // drained before GPRs are safe (s3.1).
    m.pipeline.exposed = true;
    m.pipeline.stateRegs = 27;
    m.pipeline.fpuFreezeHazard = true;
    m.pipeline.preciseInterrupts = false;

    // Off-chip M88200 CMMU: 16KB physical cache + 56-entry PATC.
    m.cache.indexing = CacheIndexing::Physical;
    m.cache.policy = WritePolicy::WriteThrough;
    m.cache.sizeBytes = 16 * 1024;
    m.cache.lineBytes = 16;
    m.cache.missPenaltyCycles = 9;
    m.cache.uncachedCycles = 10; // CMMU register access
    m.writeBuffer = {3, 5, false, 5};

    m.tlb.entries = 56;
    m.tlb.processIdTags = false; // area pointers swapped, ATC flushed
    m.tlb.management = TlbManagement::Hardware;
    m.tlb.hwMissCycles = 25;
    m.tlb.purgeEntryCycles = 10; // via CMMU control registers
    m.tlb.purgeAllCycles = 40;
    m.tlb.writeEntryCycles = 10;

    m.timing.trapEnterCycles = 5;
    m.timing.trapReturnCycles = 5;
    m.timing.ctrlRegCycles = 2; // ldcr/stcr

    m.appPerfVsCvax = 3.5; // Table 1 bottom row
    return m;
}

MachineDesc
makeR2000()
{
    MachineDesc m;
    m.id = MachineId::R2000;
    m.name = "R2000";
    m.system = "DECstation 3100";
    m.clock = Clock::fromMHz(16.67);

    // Table 6: 32 registers, 32 FP words, 5 misc words.
    m.intRegs = 32;
    m.fpStateWords = 32;
    m.miscStateWords = 5;

    m.delaySlots = 1;
    // "Nearly 50% of the delay slots in this code path are unfilled" s2.3.
    m.unfilledDelaySlotFraction = 0.5;
    m.vectoring = TrapVectoring::CommonHandler;
    m.hasAtomicOp = false; // no interlocked instruction (s4.1)
    m.providesFaultAddress = true;

    // DECstation 3100: 64KB each I/D, physical, write-through, with a
    // 4-deep write buffer that stalls 5 cycles per successive write
    // once full (s2.3).
    m.cache.indexing = CacheIndexing::Physical;
    m.cache.policy = WritePolicy::WriteThrough;
    m.cache.sizeBytes = 64 * 1024;
    m.cache.lineBytes = 4;
    m.cache.missPenaltyCycles = 6;
    m.cache.uncachedCycles = 9;
    m.writeBuffer = {4, 5, false, 5, true};

    // 64-entry software-managed TLB with 6-bit ASIDs; separate fast
    // user-miss vector, common handler for everything else.
    m.tlb.entries = 64;
    m.tlb.processIdTags = true;
    m.tlb.pidCount = 64;
    m.tlb.management = TlbManagement::Software;
    m.tlb.swUserMissCycles = 12;   // utlbmiss fast path (s5)
    m.tlb.swKernelMissCycles = 300; // "a few hundred cycles" (s5)
    m.tlb.purgeEntryCycles = 6;
    m.tlb.purgeAllCycles = 64 * 3;
    m.tlb.writeEntryCycles = 4;
    m.tlb.unmappedKernelSegment = true; // kseg0

    m.timing.trapEnterCycles = 3;
    m.timing.trapReturnCycles = 4; // jr + rfe in the delay slot

    m.appPerfVsCvax = 4.2; // Table 1 bottom row
    return m;
}

MachineDesc
makeR3000()
{
    // Same ISA as the R2000 (the paper's Table 2 shares one column);
    // the system differences are clock and the write buffer/memory.
    MachineDesc m = makeR2000();
    m.id = MachineId::R3000;
    m.name = "R3000";
    m.system = "DECstation 5000/200";
    m.clock = Clock::fromMHz(25.0);

    // 6-deep write buffer that retires one write per cycle when
    // successive writes fall on the same page (s2.3).
    m.writeBuffer = {6, 4, true, 1, false};
    m.cache.missPenaltyCycles = 14; // deeper memory in cycles at 25 MHz
    m.cache.lineBytes = 16;         // 4-word refill vs the 3100's 1

    m.appPerfVsCvax = 6.7; // Table 1 bottom row
    return m;
}

MachineDesc
makeSparc()
{
    MachineDesc m;
    m.id = MachineId::SPARC;
    m.name = "SPARC";
    m.system = "SPARCstation 1+";
    m.clock = Clock::fromMHz(25.0);

    // Table 6: 136 register words (8 windows x 16 + 8 globals),
    // 32 FP words, 6 misc words.
    m.intRegs = 136;
    m.fpStateWords = 32;
    m.miscStateWords = 6;

    m.regWindows.windows = 8;
    m.regWindows.regsPerWindow = 16;
    m.regWindows.avgSaveRestorePerSwitch = 3.0; // [Kleiman & Williams 88]

    m.delaySlots = 1;
    m.unfilledDelaySlotFraction = 0.3;
    m.vectoring = TrapVectoring::DirectVectored;
    m.hasAtomicOp = true; // ldstub
    m.providesFaultAddress = true;

    // Sun-4c: 64KB virtually-addressed write-through cache with context
    // tags (so no full flush on switch, but PTE changes must sweep the
    // page's lines), shallow write pipeline.
    m.cache.indexing = CacheIndexing::Virtual;
    m.cache.policy = WritePolicy::WriteThrough;
    m.cache.sizeBytes = 64 * 1024;
    m.cache.lineBytes = 16;
    m.cache.missPenaltyCycles = 12;
    m.cache.uncachedCycles = 10;
    m.cache.flushLineCycles = 5;
    m.cache.flushOnContextSwitch = false; // context-tagged
    m.writeBuffer = {1, 7, false, 7};

    // SPARC Reference MMU (Cypress-style): hardware 3-level table walk,
    // 64 entries, context-tagged, OS-lockable region (s3.2).
    m.tlb.entries = 64;
    m.tlb.processIdTags = true;
    m.tlb.pidCount = 4096;
    m.tlb.management = TlbManagement::Hardware;
    m.tlb.hwMissCycles = 30; // 3-level walk
    m.tlb.lockableEntries = 8;
    m.tlb.purgeEntryCycles = 8;
    m.tlb.purgeAllCycles = 48;
    m.tlb.writeEntryCycles = 6;

    m.timing.trapEnterCycles = 6; // window rotate + PSR save
    m.timing.trapReturnCycles = 6; // jmpl + rett

    m.appPerfVsCvax = 4.3; // Table 1 bottom row
    return m;
}

MachineDesc
makeI860()
{
    MachineDesc m;
    m.id = MachineId::I860;
    m.name = "i860";
    m.system = "Intel i860 (estimated)";
    m.clock = Clock::fromMHz(40.0);

    // Table 6: 32 registers, 32 FP words, 9 misc words.
    m.intRegs = 32;
    m.fpStateWords = 32;
    m.miscStateWords = 9;

    m.delaySlots = 1;
    m.unfilledDelaySlotFraction = 0.4;
    m.vectoring = TrapVectoring::CommonHandler; // one handler for all
    m.hasAtomicOp = true; // lock/unlock prefix, with restart hazards
    m.providesFaultAddress = false; // handler interprets the instruction
    m.pipeline.exposed = true;
    m.pipeline.stateRegs = 9;
    m.pipeline.fpuFreezeHazard = true;
    m.pipeline.preciseInterrupts = false;

    // On-chip 8KB data cache, virtually addressed, write-back, no
    // process tags: PTE changes and context switches sweep it (s3.2).
    m.cache.indexing = CacheIndexing::Virtual;
    m.cache.policy = WritePolicy::WriteBack;
    m.cache.sizeBytes = 8 * 1024;
    m.cache.lineBytes = 32;
    m.cache.missPenaltyCycles = 10;
    m.cache.uncachedCycles = 10;
    m.cache.flushLineCycles = 3;
    m.cache.flushOnContextSwitch = true;
    m.writeBuffer = {2, 4, false, 4};

    m.tlb.entries = 64;
    m.tlb.processIdTags = false;
    m.tlb.management = TlbManagement::Hardware;
    m.tlb.hwMissCycles = 24;
    m.tlb.purgeEntryCycles = 8;
    m.tlb.purgeAllCycles = 36; // dirbase reload flushes the TLB
    m.tlb.writeEntryCycles = 8;

    m.timing.trapEnterCycles = 5;
    m.timing.trapReturnCycles = 6;

    m.appPerfVsCvax = 7.0; // extrapolated; Table 1 gives no i860 row
    m.appPerfExtrapolated = true;
    return m;
}

MachineDesc
makeRs6000()
{
    MachineDesc m;
    m.id = MachineId::RS6000;
    m.name = "RS6000";
    m.system = "IBM RS/6000 (estimated)";
    m.clock = Clock::fromMHz(25.0);

    // Table 6: 32 registers, 64 FP words (32 x 64-bit), 4 misc words.
    m.intRegs = 32;
    m.fpStateWords = 64;
    m.miscStateWords = 4;

    m.delaySlots = 0;
    m.vectoring = TrapVectoring::DirectVectored;
    m.hasAtomicOp = true;
    m.providesFaultAddress = true;
    // Multiple pipelined units but precise interrupts (s3.1).
    m.pipeline.preciseInterrupts = true;

    m.cache.indexing = CacheIndexing::Physical;
    m.cache.policy = WritePolicy::WriteBack;
    m.cache.sizeBytes = 64 * 1024;
    m.cache.lineBytes = 64;
    m.cache.missPenaltyCycles = 14;
    m.cache.uncachedCycles = 10;
    m.writeBuffer = {4, 3, true, 1};

    // Inverted page table walked by hardware, 128-entry TLB with tags.
    m.tlb.entries = 128;
    m.tlb.processIdTags = true;
    m.tlb.pidCount = 512;
    m.tlb.management = TlbManagement::Hardware;
    m.tlb.hwMissCycles = 28;
    m.tlb.purgeEntryCycles = 8;
    m.tlb.purgeAllCycles = 64;
    m.tlb.writeEntryCycles = 6;

    m.timing.trapEnterCycles = 4;
    m.timing.trapReturnCycles = 4;

    m.appPerfVsCvax = 7.5; // extrapolated; not in Table 1
    m.appPerfExtrapolated = true;
    return m;
}

MachineDesc
makeSun3()
{
    // Sun-3/75: 16.67 MHz MC68020, the previous-generation CISC
    // workstation Ousterhout's Sprite measurement starts from (s2.1).
    MachineDesc m;
    m.id = MachineId::SUN3;
    m.name = "Sun3";
    m.system = "Sun-3/75 (s2.1 baseline)";
    m.clock = Clock::fromMHz(16.67);

    m.intRegs = 16; // 8 data + 8 address registers
    m.fpStateWords = 0;
    m.miscStateWords = 2;

    m.delaySlots = 0;
    m.vectoring = TrapVectoring::Microcoded; // 68020 exception stack
    m.hasAtomicOp = true;                    // TAS/CAS
    m.providesFaultAddress = true;
    m.microcoded = true;

    m.cache.indexing = CacheIndexing::Physical;
    m.cache.policy = WritePolicy::WriteThrough;
    m.cache.sizeBytes = 0x10000;
    m.cache.lineBytes = 16;
    m.cache.missPenaltyCycles = 8;
    m.cache.uncachedCycles = 10;
    m.writeBuffer = {1, 5, false, 5};

    // Sun-3 MMU: segment/page maps in dedicated RAM, context-tagged.
    m.tlb.entries = 64;
    m.tlb.processIdTags = true;
    m.tlb.pidCount = 8;
    m.tlb.management = TlbManagement::Hardware;
    m.tlb.hwMissCycles = 16;
    m.tlb.purgeEntryCycles = 12;
    m.tlb.purgeAllCycles = 40;
    m.tlb.writeEntryCycles = 10;

    m.timing.trapEnterCycles = 24; // exception-frame microcode
    m.timing.trapReturnCycles = 20;
    m.timing.ctrlRegCycles = 8;

    // Sun-3/75 integer throughput is ~0.85x the CVAX, which makes the
    // SPARCstation 1+ the paper's "factor of five" faster.
    m.appPerfVsCvax = 0.85;
    m.appPerfExtrapolated = true;
    return m;
}

} // namespace

MachineDesc
makeMachine(MachineId id)
{
    switch (id) {
      case MachineId::CVAX: return makeCvax();
      case MachineId::M88000: return make88000();
      case MachineId::R2000: return makeR2000();
      case MachineId::R3000: return makeR3000();
      case MachineId::SPARC: return makeSparc();
      case MachineId::I860: return makeI860();
      case MachineId::RS6000: return makeRs6000();
      case MachineId::SUN3: return makeSun3();
    }
    panic("unknown machine id");
}

const char *
machineSlug(MachineId id)
{
    switch (id) {
      case MachineId::CVAX: return "CVAX";
      case MachineId::M88000: return "M88000";
      case MachineId::R2000: return "R2000";
      case MachineId::R3000: return "R3000";
      case MachineId::SPARC: return "SPARC";
      case MachineId::I860: return "I860";
      case MachineId::RS6000: return "RS6000";
      case MachineId::SUN3: return "SUN3";
    }
    return "unknown";
}

MachineId
machineFromSlug(const std::string &slug)
{
    for (const MachineDesc &m : allMachines())
        if (slug == machineSlug(m.id))
            return m.id;
    fatal("unknown machine slug '%s'", slug.c_str());
}

std::vector<MachineDesc>
table1Machines()
{
    return {makeMachine(MachineId::CVAX), makeMachine(MachineId::M88000),
            makeMachine(MachineId::R2000), makeMachine(MachineId::R3000),
            makeMachine(MachineId::SPARC)};
}

std::vector<MachineDesc>
table2Machines()
{
    return {makeMachine(MachineId::CVAX), makeMachine(MachineId::M88000),
            makeMachine(MachineId::R2000), makeMachine(MachineId::SPARC),
            makeMachine(MachineId::I860)};
}

std::vector<MachineDesc>
table6Machines()
{
    return {makeMachine(MachineId::CVAX), makeMachine(MachineId::M88000),
            makeMachine(MachineId::R2000), makeMachine(MachineId::SPARC),
            makeMachine(MachineId::I860), makeMachine(MachineId::RS6000)};
}

std::vector<MachineDesc>
allMachines()
{
    return {makeMachine(MachineId::CVAX),
            makeMachine(MachineId::M88000),
            makeMachine(MachineId::R2000),
            makeMachine(MachineId::R3000),
            makeMachine(MachineId::SPARC),
            makeMachine(MachineId::I860),
            makeMachine(MachineId::RS6000),
            makeMachine(MachineId::SUN3)};
}

} // namespace aosd
