/**
 * @file
 * Static description of a machine (ISA + system implementation).
 *
 * One MachineDesc captures everything the paper's analysis depends on:
 * the register file and per-thread state (Table 6), trap vectoring style
 * (§2.3), register windows (§2.3, §4.1), exposed pipelines (§3.1), TLB
 * structure and management (§3.2), cache addressing (§3.2), write buffer
 * behaviour (§2.3), atomic instruction support (§4.1), and application
 * integer performance (Table 1's bottom row).
 */

#ifndef AOSD_ARCH_MACHINE_DESC_HH
#define AOSD_ARCH_MACHINE_DESC_HH

#include <cstdint>
#include <string>

#include "sim/ticks.hh"

namespace aosd
{

/** How the hardware dispatches traps and system calls. */
enum class TrapVectoring
{
    /** VAX-style: microcode vectors through the SCB directly. */
    Microcoded,
    /** 88000/SPARC-style: hardware vectors to a per-cause handler. */
    DirectVectored,
    /** R2000/i860-style: (nearly) all exceptions share one handler and
     *  software decodes the cause. */
    CommonHandler,
};

/** Who refills the TLB on a miss. */
enum class TlbManagement
{
    Hardware,
    Software,
};

/** How the primary data cache is indexed/tagged. */
enum class CacheIndexing
{
    Physical,
    Virtual,
};

/** Cache write policy. */
enum class WritePolicy
{
    WriteThrough,
    WriteBack,
};

/** Write buffer between a write-through cache and memory. */
struct WriteBufferDesc
{
    /** Number of entries (0 means stores stall for the full write). */
    std::uint32_t depth = 0;
    /** Cycles for memory to retire one buffered write. */
    std::uint32_t drainCycles = 5;
    /**
     * DECstation 5000 behaviour: successive writes to the same DRAM page
     * retire one per cycle instead of paying drainCycles each.
     */
    bool samePageFastRetire = false;
    /** Retire cycles for a same-page successive write when fast. */
    std::uint32_t samePageDrainCycles = 1;
    /**
     * Memory interface cannot service reads around pending writes
     * (DECstation 3100): a cached load issued while the buffer is
     * non-empty waits for it to drain.
     */
    bool readsWaitForDrain = false;

    bool operator==(const WriteBufferDesc &) const = default;
};

/** First-level cache parameters. */
struct CacheDesc
{
    CacheIndexing indexing = CacheIndexing::Physical;
    WritePolicy policy = WritePolicy::WriteThrough;
    std::uint32_t sizeBytes = 64 * 1024;
    std::uint32_t lineBytes = 16;
    /** Cycles lost on a read miss. */
    std::uint32_t missPenaltyCycles = 6;
    /** Cycles for an uncached access (I/O space, CMMU registers). */
    std::uint32_t uncachedCycles = 8;
    /** Cycles to flush/invalidate one line by address. */
    std::uint32_t flushLineCycles = 4;
    /** Virtually-addressed caches must be flushed on context switch
     *  unless entries carry process IDs. */
    bool flushOnContextSwitch = false;

    bool operator==(const CacheDesc &) const = default;
};

/** Translation lookaside buffer parameters. */
struct TlbDesc
{
    std::uint32_t entries = 64;
    /** Entries carry address-space identifiers (survive switches). */
    bool processIdTags = false;
    /** Number of distinct ASID/PID tags supported (0 if untagged). */
    std::uint32_t pidCount = 0;
    TlbManagement management = TlbManagement::Hardware;
    /** Entries the OS may lock against replacement (SPARC/Cypress). */
    std::uint32_t lockableEntries = 0;
    /** Hardware-managed refill cost (cycles). */
    std::uint32_t hwMissCycles = 20;
    /** Software refill: user-space miss (MIPS utlb fast path). */
    std::uint32_t swUserMissCycles = 12;
    /** Software refill: kernel/mapped-space miss (slow common path). */
    std::uint32_t swKernelMissCycles = 300;
    /** Cycles to invalidate one entry. */
    std::uint32_t purgeEntryCycles = 6;
    /** Cycles to invalidate the whole TLB. */
    std::uint32_t purgeAllCycles = 24;
    /** Cycles to write one entry. */
    std::uint32_t writeEntryCycles = 6;
    /** Machine has an unmapped, cached kernel segment (MIPS kseg0). */
    bool unmappedKernelSegment = false;

    bool operator==(const TlbDesc &) const = default;
};

/** SPARC-style overlapping register windows. */
struct RegWindowDesc
{
    std::uint32_t windows = 0;       ///< 0 = flat register file
    std::uint32_t regsPerWindow = 16;
    /** Average windows spilled+filled per context switch (SunOS data:
     *  three for 8-window SPARCs [Kleiman & Williams 88]). */
    double avgSaveRestorePerSwitch = 3.0;

    bool operator==(const RegWindowDesc &) const = default;
};

/** Pipeline visibility and exception semantics. */
struct PipelineDesc
{
    /** Pipeline state is architecturally visible and must be saved. */
    bool exposed = false;
    /** Number of internal pipeline/scoreboard control registers the
     *  exception handler must read and later restore (88000: ~27). */
    std::uint32_t stateRegs = 0;
    /** Exceptions freeze the FP unit; handler must drain/restart it
     *  before general registers are safe (88000, i860). */
    bool fpuFreezeHazard = false;
    /** Implements precise interrupts (RS6000, SPARC, R2/3000). */
    bool preciseInterrupts = true;

    bool operator==(const PipelineDesc &) const = default;
};

/** Per-op timing constants for the execution model. */
struct TimingDesc
{
    /** Hardware cycles to enter a trap handler (pipeline flush, PSW
     *  swap; on the VAX this is the CHMK/memory-fault microcode). */
    std::uint32_t trapEnterCycles = 4;
    /** Hardware cycles for the return-from-exception path. */
    std::uint32_t trapReturnCycles = 4;
    /** Cycles for a privileged control-register read/write. */
    std::uint32_t ctrlRegCycles = 2;
    /** Branch-taken penalty when no delay slot hides it. */
    std::uint32_t branchPenaltyCycles = 0;

    bool operator==(const TimingDesc &) const = default;
};

/** Identifiers for the machines the paper discusses. */
enum class MachineId
{
    CVAX,      ///< VAXstation 3200, 11.1 MHz CVAX
    M88000,    ///< Tektronix XD88/01, 20 MHz Motorola 88000
    R2000,     ///< DECstation 3100, 16.67 MHz MIPS R2000
    R3000,     ///< DECstation 5000/200, 25 MHz MIPS R3000
    SPARC,     ///< SPARCstation 1+, 25 MHz Sun SPARC
    I860,      ///< Intel i860 (instruction counts only in the paper)
    RS6000,    ///< IBM RS/6000 (thread state only in the paper)
    SUN3,      ///< Sun-3/75, MC68020 (the §2.1 Sprite RPC baseline)
};

/** Complete static machine description. */
struct MachineDesc
{
    MachineId id = MachineId::CVAX;
    std::string name;      ///< microprocessor name (paper table headers)
    std::string system;    ///< system the paper measured it in
    Clock clock = Clock::fromMHz(1.0);

    // ---- Per-thread processor state (Table 6, 32-bit words) ----
    std::uint32_t intRegs = 32;       ///< general registers
    std::uint32_t fpStateWords = 0;   ///< floating-point state
    std::uint32_t miscStateWords = 0; ///< PSW, pipeline regs, etc.

    RegWindowDesc regWindows;
    PipelineDesc pipeline;

    /** Architectural delay slots after loads/branches (0 or 1). */
    std::uint32_t delaySlots = 0;
    /** Fraction of delay slots the low-level handler code fails to
     *  fill (R2000 handlers: ~0.5 [§2.3]). */
    double unfilledDelaySlotFraction = 0.0;

    TrapVectoring vectoring = TrapVectoring::CommonHandler;
    /** Has an interlocked test&set-class instruction (§4.1: the MIPS
     *  R2000/R3000 famously does not). */
    bool hasAtomicOp = true;
    /** Hardware reports the faulting virtual address (the i860 does
     *  not; its handler interprets the faulting instruction, +26
     *  instructions [§3.1]). */
    bool providesFaultAddress = true;
    /** CISC with microcoded OS support instructions. */
    bool microcoded = false;

    WriteBufferDesc writeBuffer;
    CacheDesc cache;
    TlbDesc tlb;
    TimingDesc timing;

    /** Integer application performance relative to the CVAX
     *  (SPECmark-based bottom row of Table 1; extrapolated where the
     *  paper gives none). */
    double appPerfVsCvax = 1.0;
    /** True when appPerfVsCvax is our extrapolation, not paper data. */
    bool appPerfExtrapolated = false;

    /** Total thread context words (Table 6 row sum). */
    std::uint32_t
    threadStateWords() const
    {
        return intRegs + fpStateWords + miscStateWords;
    }

    /** Member-wise equality; the handler-program cache uses it to
     *  detect ablation-modified descriptions (cpu/handlers.hh). */
    bool operator==(const MachineDesc &) const = default;
};

} // namespace aosd

#endif // AOSD_ARCH_MACHINE_DESC_HH
