/**
 * @file
 * Multi-node network: event-driven packet delivery over a shared
 * Ethernet segment. Used by the DSM subsystem (§3, Ivy-style shared
 * virtual memory) and the multi-node RPC examples.
 */

#ifndef AOSD_NET_NETWORK_HH
#define AOSD_NET_NETWORK_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "net/ethernet.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace aosd
{

/** Delivery callback: invoked at the destination when a packet lands. */
using PacketHandler = std::function<void(const Packet &)>;

/**
 * A broadcast segment connecting numbered nodes. Transmissions
 * serialize on the wire (one segment); each delivery schedules the
 * destination's handler on the shared event queue.
 */
class Network
{
  public:
    Network(EventQueue &queue, const EthernetDesc &link);

    /** Register a node; returns its id. */
    std::uint32_t addNode(PacketHandler handler);

    /** Queue a packet for transmission; delivery is scheduled after
     *  wire occupancy + controller latency at both ends. */
    void send(std::uint32_t src, std::uint32_t dst,
              std::uint32_t payload_bytes);

    std::size_t nodeCount() const { return handlers.size(); }
    const StatGroup &stats() const { return statGroup; }
    const Ethernet &link() const { return ether; }

  private:
    EventQueue &events;
    Ethernet ether;
    std::vector<PacketHandler> handlers;
    Tick wireFreeAt = 0;
    std::uint64_t nextPacketId = 0;
    StatGroup statGroup{"network"};
};

} // namespace aosd

#endif // AOSD_NET_NETWORK_HH
