#include "net/network.hh"

#include "sim/logging.hh"

namespace aosd
{

Network::Network(EventQueue &queue, const EthernetDesc &link)
    : events(queue), ether(link)
{}

std::uint32_t
Network::addNode(PacketHandler handler)
{
    handlers.push_back(std::move(handler));
    return static_cast<std::uint32_t>(handlers.size() - 1);
}

void
Network::send(std::uint32_t src, std::uint32_t dst,
              std::uint32_t payload_bytes)
{
    if (src >= handlers.size() || dst >= handlers.size())
        panic("send between unregistered nodes");

    statGroup.inc("packets");
    statGroup.inc("payload_bytes", payload_bytes);

    Packet pkt{payload_bytes, src, dst, nextPacketId++};

    // The segment is shared: a frame starts when the wire is free.
    Tick start = std::max(events.now() + ether.controllerTime(),
                          wireFreeAt);
    Tick end = start + ether.wireTime(payload_bytes);
    wireFreeAt = end;
    Tick deliver = end + ether.controllerTime();

    events.schedule(deliver, [this, pkt] {
        handlers[pkt.dstNode](pkt);
    });
}

} // namespace aosd
