/**
 * @file
 * Ethernet wire and controller model.
 *
 * The cross-machine RPC analysis (§2.1, Table 3) needs a 10 Mbit/s
 * Ethernet: per-packet wire time (headers + preamble + payload),
 * controller DMA latency, and the interrupts each packet raises.
 * Bandwidth is parameterized so the §2.1 "10- to 100-fold network
 * improvements" sweep (ablation A6) can vary it.
 */

#ifndef AOSD_NET_ETHERNET_HH
#define AOSD_NET_ETHERNET_HH

#include <cstdint>

#include "sim/ticks.hh"

namespace aosd
{

/** Link and controller parameters. */
struct EthernetDesc
{
    /** Link bandwidth in megabits per second. */
    double mbps = 10.0;
    /** Per-packet framing overhead: preamble + MAC header + CRC +
     *  inter-frame gap, expressed in byte times. */
    std::uint32_t framingBytes = 34;
    /** Controller latency per packet (DMA setup + FIFO), microseconds. */
    double controllerLatencyUs = 25.0;
    /** Interrupts raised per packet at the receiver. */
    std::uint32_t interruptsPerPacket = 1;
};

/** A network frame. */
struct Packet
{
    std::uint32_t payloadBytes = 0;
    std::uint32_t srcNode = 0;
    std::uint32_t dstNode = 0;
    std::uint64_t id = 0;
};

/** Stateless timing helper for one link. */
class Ethernet
{
  public:
    explicit Ethernet(const EthernetDesc &d) : desc(d) {}

    /** Time the frame occupies the wire. */
    Tick
    wireTime(std::uint32_t payload_bytes) const
    {
        double bits =
            static_cast<double>(payload_bytes + desc.framingBytes) * 8.0;
        double us = bits / desc.mbps; // Mbit/s -> bits/us
        return static_cast<Tick>(us * ticksPerMicrosecond);
    }

    double
    wireTimeUs(std::uint32_t payload_bytes) const
    {
        return static_cast<double>(wireTime(payload_bytes)) /
               ticksPerMicrosecond;
    }

    Tick
    controllerTime() const
    {
        return static_cast<Tick>(desc.controllerLatencyUs *
                                 ticksPerMicrosecond);
    }

    const EthernetDesc &config() const { return desc; }

  private:
    EthernetDesc desc;
};

} // namespace aosd

#endif // AOSD_NET_ETHERNET_HH
