/**
 * @file
 * OS structure models: monolithic ("Mach 2.5") vs small-kernel
 * ("Mach 3.0"), §5.
 *
 * Both models execute the same AppProfile on an instrumented SimKernel.
 * The monolithic model services every Unix call inside the kernel; the
 * small-kernel model routes calls through a transparent emulation
 * library and cross-address-space RPCs to user-level servers (a Unix
 * server and a file cache manager), which is where the extra system
 * calls, context switches, kernel TLB misses and emulated instructions
 * of Table 7 come from.
 */

#ifndef AOSD_WORKLOAD_OS_MODEL_HH
#define AOSD_WORKLOAD_OS_MODEL_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arch/machine_desc.hh"
#include "os/kernel/kernel.hh"
#include "sim/random.hh"
#include "sim/sampling/sampler.hh"
#include "workload/app_profile.hh"

namespace aosd
{

/** Which structure the OS uses. */
enum class OsStructure
{
    Monolithic,  ///< Mach 2.5: everything in the kernel
    SmallKernel, ///< Mach 3.0: services in user-level servers
};

constexpr const char *
osStructureName(OsStructure s)
{
    return s == OsStructure::Monolithic ? "Mach 2.5 (monolithic)"
                                        : "Mach 3.0 (decomposed)";
}

/** One Table 7 row. */
struct Table7Row
{
    std::string app;
    OsStructure structure = OsStructure::Monolithic;
    double elapsedSeconds = 0;
    std::uint64_t addressSpaceSwitches = 0;
    std::uint64_t threadSwitches = 0;
    std::uint64_t systemCalls = 0;
    std::uint64_t emulatedInstructions = 0;
    std::uint64_t kernelTlbMisses = 0;
    std::uint64_t otherExceptions = 0;
    /** Percent of elapsed time inside primitive operations. */
    double percentTimeInPrimitives = 0;
    /** Per-interval event rates over the run (empty unless the config
     *  set samplingIntervalCycles). */
    CounterTimeSeries timeseries;
    /** Kernel-window cycles-explained check (valid when the config
     *  set measureKernelWindow). */
    Reconciliation kernelWindow;
    bool hasKernelWindow = false;
};

/** Tunables of the system model itself (not per-application). */
struct OsModelConfig
{
    /** Mapped kernel data pool (buffer cache, vm objects), pages. */
    std::uint32_t kernelPoolPages = 160;
    /** Timer tick rate driving reschedule switches. */
    double quantumSwitchesPerSecond = 10.0;
    /** Clock interrupt rate (Hz), counted as other exceptions. */
    double clockInterruptHz = 100.0;
    /** Unix server / file cache manager TLB working sets (pages). */
    std::uint32_t unixServerWorkingSet = 24;
    std::uint32_t cacheManagerWorkingSet = 16;
    /** Kernel-structure pages (ports, message queues) each Mach IPC
     *  system call touches in the decomposed system. */
    std::uint32_t kernelTouchesPerIpc = 5;
    /** Kernel-stack/pmap pages touched on every context switch. */
    std::uint32_t kernelTouchesPerSwitch = 4;
    /** RNG seed (runs are deterministic per seed). */
    std::uint64_t seed = 12345;
    /** Sample the counter file every this many simulated cycles into
     *  the row's time series (0 = off; off leaves the run untouched —
     *  no counter session is opened and no sample is ever taken). */
    Cycles samplingIntervalCycles = 0;
    /** Sampler ring capacity (samples kept before dropping oldest). */
    std::size_t samplerCapacity = 4096;
    /** Reconcile counted kernel events x primitive costs against the
     *  kernel's charged primitive cycles over the whole run. */
    bool measureKernelWindow = false;
};

/** Executes profiles against one machine + one OS structure. */
class MachSystem
{
  public:
    MachSystem(const MachineDesc &machine, OsStructure structure,
               OsModelConfig config = {});

    /** Run one application to completion and report its row. */
    Table7Row run(const AppProfile &app);

    OsStructure structure() const { return osStructure; }

  private:
    void serviceCallMonolithic(SimKernel &k, AddressSpace &app_space,
                               AddressSpace &daemon,
                               const AppProfile &app, Rng &rng);
    void serviceCallSmallKernel(SimKernel &k, AddressSpace &app_space,
                                AddressSpace &unix_server,
                                AddressSpace &cache_mgr,
                                const AppProfile &app, Rng &rng);
    void touchKernelPool(SimKernel &k, std::uint32_t touches, Rng &rng);

    MachineDesc desc;
    OsStructure osStructure;
    OsModelConfig cfg;
    /** Scratch page list reused by touchKernelPool (the engine calls
     *  it per syscall/IPC/switch; no per-call allocation). */
    std::vector<Vpn> poolScratch;
};

/** Paper values for Table 7 (for benches/tests). Returns a row with
 *  zeros when the paper has no such entry. */
Table7Row paperTable7Row(const std::string &app, OsStructure structure);

/** Dotted-path-safe slug for an app/run name: lower-case, every
 *  non-alphanumeric run collapsed to one '_' ("parthenon (1 thread)"
 *  -> "parthenon_1_thread"). */
std::string appSlug(const std::string &name);

class ParallelRunner;

/**
 * The full Table 7 grid for one machine: every (OS structure, app)
 * cell, structure-major — the order machStudy has always produced.
 * Each cell replays its app in its own simulation slice (fresh
 * MachSystem, fresh SimKernel, per-app-seeded Rng), so the runner can
 * fan the cells across workers and still hand back rows bit-for-bit
 * identical to the serial loop.
 */
std::vector<Table7Row> runMachGrid(const MachineDesc &machine,
                                   ParallelRunner &runner,
                                   OsModelConfig config = {});

} // namespace aosd

#endif // AOSD_WORKLOAD_OS_MODEL_HH
