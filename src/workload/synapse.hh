/**
 * @file
 * The Synapse experiment (§4.1).
 *
 * The authors measured the Synapse parallel simulation environment on
 * a Sequent and found procedure-call : context-switch ratios between
 * 21:1 and 42:1, and observed that on a SPARC — where a user-level
 * thread switch costs ~50 procedure calls — such a program would spend
 * more time switching than calling. This module reproduces that
 * arithmetic from the simulated thread costs of every machine.
 */

#ifndef AOSD_WORKLOAD_SYNAPSE_HH
#define AOSD_WORKLOAD_SYNAPSE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "arch/machine_desc.hh"
#include "os/threads/thread.hh"

namespace aosd
{

/** One Synapse run's call/switch profile. */
struct SynapseRun
{
    std::string name;
    std::uint64_t procedureCalls = 0;
    std::uint64_t contextSwitches = 0;

    double
    callSwitchRatio() const
    {
        return contextSwitches
                   ? static_cast<double>(procedureCalls) /
                         static_cast<double>(contextSwitches)
                   : 0.0;
    }
};

/** The measured range of Synapse experiments (21:1 .. 42:1). */
std::vector<SynapseRun> synapseExperiments();

/** Result of pricing one run on one machine. */
struct SynapseCostResult
{
    std::string run;
    double ratio = 0;
    double callTimeUs = 0;
    double switchTimeUs = 0;
    /** True when the program spends more time switching than calling —
     *  the §4.1 SPARC verdict. */
    bool switchesDominate() const { return switchTimeUs > callTimeUs; }
};

/** Price a run's call and switch time on `machine`. */
SynapseCostResult priceSynapseRun(const MachineDesc &machine,
                                  const SynapseRun &run,
                                  ThreadCostOptions opts = {});

} // namespace aosd

#endif // AOSD_WORKLOAD_SYNAPSE_HH
