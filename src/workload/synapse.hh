/**
 * @file
 * The Synapse experiment (§4.1).
 *
 * The authors measured the Synapse parallel simulation environment on
 * a Sequent and found procedure-call : context-switch ratios between
 * 21:1 and 42:1, and observed that on a SPARC — where a user-level
 * thread switch costs ~50 procedure calls — such a program would spend
 * more time switching than calling. This module reproduces that
 * arithmetic from the simulated thread costs of every machine.
 */

#ifndef AOSD_WORKLOAD_SYNAPSE_HH
#define AOSD_WORKLOAD_SYNAPSE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "arch/machine_desc.hh"
#include "os/threads/thread.hh"
#include "sim/sampling/sampler.hh"

namespace aosd
{

/** One Synapse run's call/switch profile. */
struct SynapseRun
{
    std::string name;
    std::uint64_t procedureCalls = 0;
    std::uint64_t contextSwitches = 0;

    double
    callSwitchRatio() const
    {
        return contextSwitches
                   ? static_cast<double>(procedureCalls) /
                         static_cast<double>(contextSwitches)
                   : 0.0;
    }
};

/** The measured range of Synapse experiments (21:1 .. 42:1). */
std::vector<SynapseRun> synapseExperiments();

/** Result of pricing one run on one machine. */
struct SynapseCostResult
{
    std::string run;
    double ratio = 0;
    double callTimeUs = 0;
    double switchTimeUs = 0;
    /** True when the program spends more time switching than calling —
     *  the §4.1 SPARC verdict. */
    bool switchesDominate() const { return switchTimeUs > callTimeUs; }
};

/** Price a run's call and switch time on `machine`. */
SynapseCostResult priceSynapseRun(const MachineDesc &machine,
                                  const SynapseRun &run,
                                  ThreadCostOptions opts = {});

/** A chronological replay of one Synapse run: the same totals as
 *  priceSynapseRun, plus a sampled event-rate time series. */
struct SynapseSimResult
{
    SynapseCostResult priced;
    Cycles callCycles = 0;
    Cycles switchCycles = 0;
    Cycles totalCycles = 0;
    CounterTimeSeries timeseries;
};

/**
 * Replay `run` call by call and switch by switch on `machine`'s
 * simulated thread costs, sampling the counter file ~`target_samples`
 * times over the run (the interval is computed up front from the
 * closed-form total, so the series length is machine-independent).
 * The aux/occupancy channel carries cumulative switch cycles — the
 * §4.1 "more time switching than calling" verdict, resolved over the
 * run instead of asserted at the end.
 */
SynapseSimResult simulateSynapseRun(const MachineDesc &machine,
                                    const SynapseRun &run,
                                    unsigned target_samples = 64,
                                    ThreadCostOptions opts = {});

} // namespace aosd

#endif // AOSD_WORKLOAD_SYNAPSE_HH
