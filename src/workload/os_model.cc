#include "workload/os_model.hh"

#include "os/threads/sync.hh"
#include "sim/logging.hh"
#include "sim/parallel/parallel_runner.hh"

namespace aosd
{

MachSystem::MachSystem(const MachineDesc &machine, OsStructure structure,
                       OsModelConfig config)
    : desc(machine), osStructure(structure), cfg(config)
{}

void
MachSystem::touchKernelPool(SimKernel &k, std::uint32_t touches, Rng &rng)
{
    // Mapped kernel data (buffer cache, vm objects, u-areas) scattered
    // over a pool much larger than the TLB.
    poolScratch.clear();
    for (std::uint32_t i = 0; i < touches; ++i)
        poolScratch.push_back(0xC00 + rng.below(cfg.kernelPoolPages));
    k.touchPages(poolScratch, /*kernel_space=*/true);
}

void
MachSystem::serviceCallMonolithic(SimKernel &k, AddressSpace &app_space,
                                  AddressSpace &daemon,
                                  const AppProfile &app, Rng &rng)
{
    k.syscall();
    touchKernelPool(k, app.kernelTouchesPerCall, rng);
    if (rng.chance(app.blockFraction)) {
        // The call blocks on I/O: switch away and eventually back.
        k.contextSwitchTo(daemon);
        touchKernelPool(k, cfg.kernelTouchesPerSwitch, rng);
        k.contextSwitchTo(app_space);
        touchKernelPool(k, cfg.kernelTouchesPerSwitch, rng);
    }
}

void
MachSystem::serviceCallSmallKernel(SimKernel &k, AddressSpace &app_space,
                                   AddressSpace &unix_server,
                                   AddressSpace &cache_mgr,
                                   const AppProfile &app, Rng &rng)
{
    // The transparent emulation library fields the Unix call first.
    std::uint64_t emul =
        static_cast<std::uint64_t>(app.emulInstrsPerCall);
    double frac = app.emulInstrsPerCall - static_cast<double>(emul);
    if (rng.chance(frac))
        ++emul;
    k.emulateInstructions(emul);

    if (!rng.chance(app.rpcFraction))
        return; // satisfied from the library's cache

    // One or more server RPCs. Each is at least two system calls
    // (send request, send reply); the switch count per RPC reflects
    // reply batching as measured in the paper.
    double servers = app.serversPerRpc;
    std::uint32_t nservers = static_cast<std::uint32_t>(servers);
    if (rng.chance(servers - nservers))
        ++nservers;
    for (std::uint32_t s = 0; s < nservers; ++s) {
        AddressSpace &server = (s % 2 == 0) ? unix_server : cache_mgr;
        k.syscall(); // send request
        touchKernelPool(k, cfg.kernelTouchesPerIpc, rng);
        bool switch_out = rng.chance(app.switchesPerRpc / 2.0);
        if (switch_out) {
            k.contextSwitchTo(server);
            touchKernelPool(k, cfg.kernelTouchesPerSwitch, rng);
        }
        k.runUserCode(app.serverInstrsPerRpc);
        k.syscall(); // send reply
        touchKernelPool(k, cfg.kernelTouchesPerIpc, rng);
        if (switch_out) {
            k.contextSwitchTo(app_space);
            touchKernelPool(k, cfg.kernelTouchesPerSwitch, rng);
        }
    }
}

Table7Row
MachSystem::run(const AppProfile &app)
{
    SimKernel kernel(desc);
    Rng rng(cfg.seed ^ std::hash<std::string>{}(app.name));

    AddressSpace &app_space = kernel.createSpace(app.name);
    app_space.setWorkingSet(0x1000, app.workingSetPages);
    app_space.mapRange(0x1000, app.workingSetPages, 0x10000, {});

    AddressSpace &daemon = kernel.createSpace("daemon");
    daemon.setWorkingSet(0x3000, 10);
    daemon.mapRange(0x3000, 10, 0x20000, {});

    AddressSpace &unix_server = kernel.createSpace("unix-server");
    unix_server.setWorkingSet(0x5000, cfg.unixServerWorkingSet);
    unix_server.mapRange(0x5000, cfg.unixServerWorkingSet, 0x30000, {});

    AddressSpace &cache_mgr = kernel.createSpace("file-cache-mgr");
    cache_mgr.setWorkingSet(0x7000, cfg.cacheManagerWorkingSet);
    cache_mgr.mapRange(0x7000, cfg.cacheManagerWorkingSet, 0x40000, {});

    // Map the kernel pool in the kernel's space.
    kernel.kernelSpace().mapRange(0xC00, cfg.kernelPoolPages, 0x800, {});

    kernel.contextSwitchTo(app_space);
    kernel.resetAccounting();

    // Counter window over the measured run. Only opened when the
    // config asks for sampling or the kernel-window check, so the
    // default configuration behaves exactly as before this existed.
    bool want_counters =
        cfg.samplingIntervalCycles > 0 || cfg.measureKernelWindow;
    bool ctrs_were_on = HwCounters::instance().enabled();
    CounterSet ctr_base;
    if (want_counters) {
        HwCounters::instance().enable(); // resets
        ctr_base = HwCounters::instance().snapshot();
    }
    CounterSampler &sampler = CounterSampler::instance();
    if (cfg.samplingIntervalCycles > 0)
        sampler.begin({cfg.samplingIntervalCycles,
                       cfg.samplerCapacity});

    bool needs_tas_emulation = !desc.hasAtomicOp;
    Cycles atomic_lock_cost =
        desc.hasAtomicOp
            ? lockPairCycles(desc, LockImpl::AtomicInstruction)
            : 0;

    // Spread faults, interrupts, locks and intra-space thread switches
    // across the service-call backbone.
    std::uint64_t n = std::max<std::uint64_t>(app.unixServiceCalls, 1);
    double faults_acc = 0, ints_acc = 0, locks_acc = 0, intra_acc = 0;
    double emul25_acc = 0;
    double faults_per = static_cast<double>(app.pageFaults) / n;
    double ints_per = static_cast<double>(app.deviceInterrupts) / n;
    double locks_per = static_cast<double>(app.lockOps) / n;
    double intra_per = static_cast<double>(app.intraSpaceSwitches) / n;
    double emul25_per =
        static_cast<double>(app.emulInstrsMonolithic) / n;
    std::uint64_t user_per_call = app.userInstructionsK * 1000 / n;

    for (std::uint64_t i = 0; i < n; ++i) {
        if (osStructure == OsStructure::Monolithic) {
            serviceCallMonolithic(kernel, app_space, daemon, app, rng);
            // Drain each accumulator to a count, then charge the
            // whole homogeneous run in one batched call (falls back
            // to the identical per-event loop under --no-batch).
            std::uint64_t emul25_n = 0;
            for (emul25_acc += emul25_per; emul25_acc >= 1;
                 emul25_acc -= 1)
                ++emul25_n;
            kernel.emulateSingleInstructionsBatch(emul25_n);
        } else {
            serviceCallSmallKernel(kernel, app_space, unix_server,
                                   cache_mgr, app, rng);
        }

        kernel.runUserCode(user_per_call);
        kernel.touchWorkingSet();

        std::uint64_t faults_n = 0;
        for (faults_acc += faults_per; faults_acc >= 1; faults_acc -= 1)
            ++faults_n;
        kernel.otherExceptionBatch(faults_n);
        // Interrupt handling interleaves a stateful kernel-pool touch
        // (TLB content, rng draws) per event, so it stays stepped.
        for (ints_acc += ints_per; ints_acc >= 1; ints_acc -= 1) {
            kernel.otherException();
            touchKernelPool(kernel, 1, rng);
        }
        std::uint64_t intra_n = 0;
        for (intra_acc += intra_per; intra_acc >= 1; intra_acc -= 1)
            ++intra_n;
        kernel.threadSwitchBatch(intra_n);
        std::uint64_t locks_n = 0;
        for (locks_acc += locks_per; locks_acc >= 1; locks_acc -= 1)
            ++locks_n;
        if (needs_tas_emulation)
            kernel.emulateTestAndSetBatch(locks_n);
        else if (locks_n)
            // addCycles has no per-event observable (no entry count,
            // no histogram), so one aggregate charge is exact.
            kernel.chargeCycles(locks_n * atomic_lock_cost);

        sampler.tick(kernel.elapsedCycles(),
                     static_cast<double>(kernel.primitiveCycles()));
    }

    kernel.chargeMicros(app.ioWaitSeconds * 1e6);

    // Timer-driven activity proportional to (approximate) elapsed time.
    double elapsed = kernel.elapsedSeconds();
    auto clock_ints = static_cast<std::uint64_t>(
        elapsed * cfg.clockInterruptHz);
    // sample_each: the per-event loop ticked the sampler after every
    // clock interrupt; the batched charge reproduces each crossed
    // interval boundary via CounterSampler::tickRun.
    kernel.otherExceptionBatch(clock_ints, /*sample_each=*/true);
    auto resched = static_cast<std::uint64_t>(
        elapsed * cfg.quantumSwitchesPerSecond / 2.0);
    for (std::uint64_t i = 0; i < resched; ++i) {
        kernel.contextSwitchTo(daemon);
        kernel.contextSwitchTo(app_space);
        sampler.tick(kernel.elapsedCycles(),
                     static_cast<double>(kernel.primitiveCycles()));
    }

    Table7Row row;
    row.app = app.name;
    row.structure = osStructure;
    row.elapsedSeconds = kernel.elapsedSeconds();
    const StatGroup &s = kernel.stats();
    row.addressSpaceSwitches = s.get(kstat::addrSpaceSwitches);
    row.threadSwitches = s.get(kstat::threadSwitches);
    row.systemCalls = s.get(kstat::syscalls);
    row.emulatedInstructions = s.get(kstat::emulatedInstrs);
    row.kernelTlbMisses = s.get(kstat::kernelTlbMisses);
    row.otherExceptions = s.get(kstat::otherExceptions);
    row.percentTimeInPrimitives =
        100.0 * static_cast<double>(kernel.primitiveCycles()) /
        static_cast<double>(std::max<Cycles>(kernel.elapsedCycles(), 1));

    if (cfg.samplingIntervalCycles > 0) {
        sampler.finish(kernel.elapsedCycles(),
                       static_cast<double>(kernel.primitiveCycles()));
        row.timeseries = sampler.series();
    }
    if (cfg.measureKernelWindow) {
        CounterSet events =
            HwCounters::instance().snapshot().delta(ctr_base);
        row.kernelWindow = reconcileKernelWindow(
            kernelWindowCosts(desc), events,
            kernel.primitiveCycles());
        row.hasKernelWindow = true;
    }
    if (want_counters) {
        HwCounters::instance().disable();
        HwCounters::instance().reset();
        if (ctrs_were_on)
            HwCounters::instance().resume();
    }
    return row;
}

std::string
appSlug(const std::string &name)
{
    std::string out;
    bool pending_sep = false;
    for (char ch : name) {
        bool alnum = (ch >= 'a' && ch <= 'z') ||
                     (ch >= 'A' && ch <= 'Z') ||
                     (ch >= '0' && ch <= '9');
        if (!alnum) {
            pending_sep = !out.empty();
            continue;
        }
        if (pending_sep) {
            out += '_';
            pending_sep = false;
        }
        out += (ch >= 'A' && ch <= 'Z')
                   ? static_cast<char>(ch - 'A' + 'a')
                   : ch;
    }
    return out;
}

Table7Row
paperTable7Row(const std::string &app, OsStructure structure)
{
    struct Raw
    {
        const char *name;
        double t25;
        std::uint64_t as25, th25, sc25, em25, tlb25, ex25;
        double t30;
        std::uint64_t as30, th30, sc30, em30, tlb30, ex30;
        double pct30;
    };
    static const Raw rows[] = {
        {"spellcheck-1", 2.3, 139, 238, 802, 39, 2953, 2274,
         1.4, 1277, 1418, 1898, 13807, 22931, 2824, 20},
        {"latex-150", 69.3, 2336, 2952, 5513, 320, 34203, 15049,
         80.9, 16208, 19068, 16561, 213781, 378159, 19309, 5},
        {"andrew-local", 73.9, 3477, 5788, 35168, 331, 145446, 67611,
         99.2, 41355, 50865, 70495, 492179, 1136756, 144122, 12},
        {"andrew-remote", 92.5, 3904, 6779, 35498, 410, 205799, 67618,
         150.0, 128874, 144919, 160233, 1601813, 1865436, 187804, 16},
        {"link-vmunix", 25.5, 537, 994, 13099, 137, 46628, 15365,
         29.9, 24589, 25830, 26904, 164436, 423607, 28796, 16},
        {"parthenon (1 thread)", 22.9, 171, 309, 257, 1395555, 1077,
         2660, 28.8, 1723, 2211, 1308, 1406792, 12675, 3385, 18},
        {"parthenon (10 threads)", 20.8, 176, 1165, 268, 1254087, 2961,
         3360, 26.3, 1785, 3963, 1372, 1341130, 18038, 4045, 19},
    };

    Table7Row row;
    row.app = app;
    row.structure = structure;
    for (const Raw &r : rows) {
        if (app != r.name)
            continue;
        if (structure == OsStructure::Monolithic) {
            row.elapsedSeconds = r.t25;
            row.addressSpaceSwitches = r.as25;
            row.threadSwitches = r.th25;
            row.systemCalls = r.sc25;
            row.emulatedInstructions = r.em25;
            row.kernelTlbMisses = r.tlb25;
            row.otherExceptions = r.ex25;
            row.percentTimeInPrimitives = 0; // paper reports 3.0 only
        } else {
            row.elapsedSeconds = r.t30;
            row.addressSpaceSwitches = r.as30;
            row.threadSwitches = r.th30;
            row.systemCalls = r.sc30;
            row.emulatedInstructions = r.em30;
            row.kernelTlbMisses = r.tlb30;
            row.otherExceptions = r.ex30;
            row.percentTimeInPrimitives = r.pct30;
        }
        return row;
    }
    return row;
}

std::vector<Table7Row>
runMachGrid(const MachineDesc &machine, ParallelRunner &runner,
            OsModelConfig config)
{
    // Structure-major cell order, exactly as the serial study loops.
    struct Cell
    {
        OsStructure structure;
        AppProfile app;
    };
    std::vector<Cell> cells;
    for (OsStructure s :
         {OsStructure::Monolithic, OsStructure::SmallKernel})
        for (const AppProfile &app : table7Workloads())
            cells.push_back({s, app});

    std::vector<std::function<Table7Row()>> tasks;
    tasks.reserve(cells.size());
    for (const Cell &cell : cells)
        tasks.push_back([&machine, &cell, config] {
            MachSystem system(machine, cell.structure, config);
            return system.run(cell.app);
        });
    return runner.map<Table7Row>(tasks);
}

} // namespace aosd
