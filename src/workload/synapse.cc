#include "workload/synapse.hh"

#include <algorithm>

#include "sim/counters/counters.hh"

namespace aosd
{

std::vector<SynapseRun>
synapseExperiments()
{
    // The paper reports ratios from 21:1 to 42:1 across experiments
    // (8 of the calls per switch came from the run-time system).
    return {
        {"logic-sim-small", 420000, 20000},   // 21:1
        {"logic-sim-medium", 870000, 30000},  // 29:1
        {"queueing-net", 1440000, 40000},     // 36:1
        {"logic-sim-large", 2100000, 50000},  // 42:1
    };
}

SynapseCostResult
priceSynapseRun(const MachineDesc &machine, const SynapseRun &run,
                ThreadCostOptions opts)
{
    ThreadCosts costs = computeThreadCosts(machine, opts);
    SynapseCostResult r;
    r.run = run.name;
    r.ratio = run.callSwitchRatio();
    r.callTimeUs = machine.clock.cyclesToMicros(
        costs.procedureCall * run.procedureCalls);
    r.switchTimeUs = machine.clock.cyclesToMicros(
        costs.userThreadSwitch * run.contextSwitches);
    return r;
}

SynapseSimResult
simulateSynapseRun(const MachineDesc &machine, const SynapseRun &run,
                   unsigned target_samples, ThreadCostOptions opts)
{
    ThreadCosts costs = computeThreadCosts(machine, opts);
    SynapseSimResult r;
    r.priced = priceSynapseRun(machine, run, opts);

    Cycles total = costs.procedureCall * run.procedureCalls +
                   costs.userThreadSwitch * run.contextSwitches;
    Cycles interval = std::max<Cycles>(
        1, total / std::max<unsigned>(target_samples, 1));

    bool ctrs_were_on = HwCounters::instance().enabled();
    HwCounters::instance().enable(); // resets
    CounterSampler &sampler = CounterSampler::instance();
    sampler.begin({interval, 4096});

    // Interleave chronologically: spread the calls evenly across the
    // switch boundaries (integer arithmetic, no rounding drift).
    Cycles now = 0;
    std::uint64_t switches = run.contextSwitches;
    std::uint64_t calls_done = 0;
    for (std::uint64_t s = 0; s <= switches; ++s) {
        std::uint64_t calls_target =
            run.procedureCalls * (s + 1) / (switches + 1);
        for (; calls_done < calls_target; ++calls_done) {
            now += costs.procedureCall;
            r.callCycles += costs.procedureCall;
            countEvent(HwCounter::ProcedureCalls);
            sampler.tick(now, static_cast<double>(r.switchCycles));
        }
        if (s < switches) {
            now += costs.userThreadSwitch;
            r.switchCycles += costs.userThreadSwitch;
            countEvent(HwCounter::ThreadSwitches);
            sampler.tick(now, static_cast<double>(r.switchCycles));
        }
    }
    r.totalCycles = now;

    sampler.finish(now, static_cast<double>(r.switchCycles));
    r.timeseries = sampler.series();
    HwCounters::instance().disable();
    HwCounters::instance().reset();
    if (ctrs_were_on)
        HwCounters::instance().resume();
    return r;
}

} // namespace aosd
