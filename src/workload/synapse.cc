#include "workload/synapse.hh"

namespace aosd
{

std::vector<SynapseRun>
synapseExperiments()
{
    // The paper reports ratios from 21:1 to 42:1 across experiments
    // (8 of the calls per switch came from the run-time system).
    return {
        {"logic-sim-small", 420000, 20000},   // 21:1
        {"logic-sim-medium", 870000, 30000},  // 29:1
        {"queueing-net", 1440000, 40000},     // 36:1
        {"logic-sim-large", 2100000, 50000},  // 42:1
    };
}

SynapseCostResult
priceSynapseRun(const MachineDesc &machine, const SynapseRun &run,
                ThreadCostOptions opts)
{
    ThreadCosts costs = computeThreadCosts(machine, opts);
    SynapseCostResult r;
    r.run = run.name;
    r.ratio = run.callSwitchRatio();
    r.callTimeUs = machine.clock.cyclesToMicros(
        costs.procedureCall * run.procedureCalls);
    r.switchTimeUs = machine.clock.cyclesToMicros(
        costs.userThreadSwitch * run.contextSwitches);
    return r;
}

} // namespace aosd
