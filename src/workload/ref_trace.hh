/**
 * @file
 * Synthetic reference traces: the §1/§3.2 measurement background.
 *
 * The paper leans on two trace studies: Agarwal et al. found >50% of
 * references in VAX Ultrix workloads were system references, and
 * Clark & Emer found VMS made one fifth of the references but two
 * thirds of the TLB misses on a VAX-11/780. This module generates
 * mixed user/system reference streams with the locality properties
 * that produce those effects — tight user working sets vs sprawling,
 * switch-interrupted system footprints — and drives them through the
 * TLB model so the asymmetry is reproduced rather than asserted.
 */

#ifndef AOSD_WORKLOAD_REF_TRACE_HH
#define AOSD_WORKLOAD_REF_TRACE_HH

#include <cstdint>

#include "arch/machine_desc.hh"
#include "mem/tlb.hh"
#include "sim/random.hh"
#include "sim/sampling/sampler.hh"

namespace aosd
{

/** Parameters of the synthetic trace. */
struct RefTraceConfig
{
    /** Total memory references to generate. */
    std::uint64_t references = 2'000'000;
    /** Fraction of references made in system mode (Clark & Emer's
     *  VMS measured ~0.20; Agarwal's Ultrix workloads >0.50). */
    double systemFraction = 0.20;
    /** User locality: pages in the hot working set, and probability a
     *  user reference stays inside it. */
    std::uint32_t userHotPages = 16;
    double userHotProbability = 0.97;
    std::uint32_t userColdPages = 256;
    /** System references sprawl across a large pool (buffer cache,
     *  process structures, page tables). */
    std::uint32_t systemPoolPages = 1024;
    double systemHotProbability = 0.55;
    std::uint32_t systemHotPages = 24;
    /** Context switches per million references; each one disturbs
     *  the TLB (purge when untagged, pressure when tagged). */
    std::uint32_t switchesPerMillion = 400;
    std::uint32_t processes = 8;
    std::uint64_t seed = 2718281828;
    /** Sample the counter file every this many simulated cycles into
     *  the result's time series (0 = off; off leaves the replay
     *  untouched — no counter session is opened). */
    Cycles samplingIntervalCycles = 0;
    std::size_t samplerCapacity = 4096;
};

/** Outcome of running a trace through a TLB. */
struct RefTraceResult
{
    std::uint64_t userRefs = 0;
    std::uint64_t systemRefs = 0;
    std::uint64_t userMisses = 0;
    std::uint64_t systemMisses = 0;
    /** Simulated cycles of the replay: one per reference, plus refill
     *  costs on misses and purge costs on untagged-TLB switches. */
    Cycles cycles = 0;
    /** Per-interval event rates (empty unless the config asked). */
    CounterTimeSeries timeseries;

    double
    systemRefShare() const
    {
        auto total = userRefs + systemRefs;
        return total ? static_cast<double>(systemRefs) /
                           static_cast<double>(total)
                     : 0.0;
    }

    double
    systemMissShare() const
    {
        auto total = userMisses + systemMisses;
        return total ? static_cast<double>(systemMisses) /
                           static_cast<double>(total)
                     : 0.0;
    }

    double
    userMissRate() const
    {
        return userRefs ? static_cast<double>(userMisses) /
                              static_cast<double>(userRefs)
                        : 0.0;
    }

    double
    systemMissRate() const
    {
        return systemRefs ? static_cast<double>(systemMisses) /
                                static_cast<double>(systemRefs)
                          : 0.0;
    }
};

/** Generate a trace and run it through `machine`'s TLB geometry. */
RefTraceResult runRefTrace(const MachineDesc &machine,
                           const RefTraceConfig &cfg = {});

} // namespace aosd

#endif // AOSD_WORKLOAD_REF_TRACE_HH
