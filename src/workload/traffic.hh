/**
 * @file
 * Synthetic open/closed-loop traffic over SimKernel.
 *
 * The Table 7 replays answer "what does one benchmark cost"; this
 * driver answers the datacenter-style question the hardware/OS
 * co-design literature asks of the same primitives: how do latency
 * percentiles behave as offered load approaches and passes the
 * service capacity of a machine's kernel? Requests are weighted
 * mixes of the kernel's closed-form primitives (system calls, traps,
 * faults, thread switches, emulated test&sets, instruction
 * emulations, PTE changes), queued FIFO at a single simulated
 * server. The open loop sprays arrivals at a configured fraction of
 * capacity with uniform, bursty (Markov-modulated) or diurnal
 * (triangle-ramp) gap processes; the closed loop cycles a fixed
 * client population through think time. Latency and wait
 * distributions come from the exact log2 Histogram, and every cell's
 * kernel window is reconciled 100%-explained via
 * reconcileKernelWindow().
 *
 * Everything is integer-cycle or +,-,×,÷ double arithmetic on
 * deterministic Rng draws — no libm — so traffic.json is
 * byte-identical across --jobs values, batch on/off, and predecode
 * on/off. The batch charger (sim/batch) is what makes million-request
 * sweeps affordable: each request's primitive runs are charged in
 * closed form instead of event by event.
 */

#ifndef AOSD_WORKLOAD_TRAFFIC_HH
#define AOSD_WORKLOAD_TRAFFIC_HH

#include <cstdint>
#include <vector>

#include "arch/machines.hh"
#include "os/kernel/kernel.hh"
#include "sim/json.hh"
#include "sim/parallel/parallel_runner.hh"

namespace aosd
{

/** How request arrivals spread over virtual time (open loop). */
enum class TrafficArrival
{
    Uniform, ///< i.i.d. uniform gaps around the configured rate
    Bursty,  ///< two-state Markov-modulated gaps (burst / quiet)
    Diurnal, ///< rate ramps 0.5x -> 1.5x -> 0.5x across the run
};

/** Open loop (arrivals ignore completions) or closed loop (a fixed
 *  client population with think time between requests). */
enum class TrafficMode
{
    Open,
    Closed,
};

const char *trafficArrivalName(TrafficArrival a);
const char *trafficModeName(TrafficMode m);

struct TrafficConfig
{
    TrafficMode mode = TrafficMode::Open;
    TrafficArrival arrival = TrafficArrival::Uniform;
    /** Requests simulated per (machine × load level) cell. */
    std::uint64_t requestsPerLevel = 100000;
    /** Open loop: offered load as a fraction of the machine's mean
     *  service capacity (1.0 = arrivals exactly saturate the kernel).
     *  Closed loop: the client population size. */
    std::vector<double> levels = {0.3, 0.6, 0.9, 1.2};
    /** Closed loop: mean think time as a multiple of the machine's
     *  mean service time. */
    double thinkFactor = 5.0;
    std::uint64_t seed = 0x5eedf00d;
    /** Top-K slowest requests retained per cell (digested out at
     *  perfdb ingest, like span exemplars). */
    std::size_t exemplars = 5;
    /** Machines to sweep; empty selects the Table 1 machines. */
    std::vector<MachineId> machines;
};

/**
 * Run the whole sweep — every (machine × load level) cell fanned over
 * `runner` in fixed order — and build traffic.json v1:
 *
 *   {"schema_version":1,"kind":"traffic","config":{...},
 *    "total_requests":N,
 *    "machines":[{"machine":slug,"load_levels":[
 *      {"load":..,"requests":..,"offered_rps":..,
 *       "elapsed_seconds":..,"throughput_rps":..,
 *       "mean_service_cycles":..,"max_queue_depth":..,
 *       "latency_cycles":{"all":{hist},"per_class":{name:{hist}}},
 *       "wait_cycles":{hist},"kernel_window":{reconciliation},
 *       "slowest_requests":[{id,class,arrival_cycle,wait_cycles,
 *                            service_cycles,latency_cycles}]}]}]}
 */
Json buildTrafficDoc(const TrafficConfig &cfg, ParallelRunner &runner);

/**
 * Drive ~`total_events` kernel events through `kernel` as seeded
 * randomized homogeneous runs (length 1..256) over every batchable
 * primitive, via the batched entry points — so with batching enabled
 * the runs are charged in closed form and with it disabled the same
 * calls take the per-event loops. `pte_space` (may be null to skip
 * PTE-change runs) needs pages mapped at 0x1000; `sample_each`
 * reproduces a per-event sampler tick for every event. Returns the
 * number of events issued (>= total_events). Shared by the
 * batch-equivalence property tests and BM_KernelWindowBatched.
 */
std::uint64_t replayEventMix(SimKernel &kernel, AddressSpace *pte_space,
                             std::uint64_t total_events,
                             std::uint64_t seed,
                             bool sample_each = false);

} // namespace aosd

#endif // AOSD_WORKLOAD_TRAFFIC_HH
