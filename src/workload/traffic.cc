#include "workload/traffic.hh"

#include <algorithm>
#include <cstddef>
#include <functional>

#include "sim/counters/counters.hh"
#include "sim/random.hh"

namespace aosd
{

namespace
{

/** Pages the traffic space keeps mapped for the PTE-change mix. */
constexpr Vpn trafficPteBase = 0x1000;
constexpr std::uint64_t trafficPtePages = 64;

/**
 * A request class: a weighted mix of the kernel primitives whose
 * per-event prices reconcileKernelWindow() knows exactly (no
 * contextSwitchTo, no page touches), so every cell's kernel window
 * explains 100.0% of its primitive cycles — the driver's built-in
 * honesty check.
 */
struct RequestClass
{
    const char *name;
    std::uint32_t weight;
    std::uint32_t syscalls;
    std::uint32_t traps;
    std::uint32_t exceptions;
    std::uint32_t threadSwitches;
    std::uint32_t tasOps;
    std::uint32_t emulInstrs;
    std::uint32_t pteChanges;
};

/** The request mix, loosely the §4.1 application profiles: syscall-
 *  dominated clients, a faulting VM path, a lock-handoff path (the
 *  parthenon test&set story) and a scheduler tick. Weights sum 100. */
constexpr RequestClass requestClasses[] = {
    {"null_syscall", 40, 1, 0, 0, 0, 0, 0, 0},
    {"read_cached", 25, 2, 1, 0, 0, 0, 12, 0},
    {"write_update", 15, 2, 1, 0, 0, 0, 6, 2},
    {"page_fault", 10, 0, 1, 2, 0, 0, 0, 1},
    {"lock_handoff", 6, 1, 0, 0, 2, 4, 0, 0},
    {"scheduler_tick", 4, 0, 0, 1, 1, 0, 25, 0},
};

constexpr std::size_t numRequestClasses = std::size(requestClasses);

std::uint32_t
totalClassWeight()
{
    std::uint32_t w = 0;
    for (const RequestClass &c : requestClasses)
        w += c.weight;
    return w;
}

/** The class's service demand priced with the machine's own kernel-
 *  window constants (exceptions go through the trap machinery). */
Cycles
classServiceCycles(const RequestClass &c, const KernelWindowCosts &kc)
{
    return c.syscalls * kc.syscallCycles +
           (c.traps + c.exceptions) * kc.trapCycles +
           c.threadSwitches * kc.switchCycles +
           c.tasOps * kc.emulTasCycles +
           c.emulInstrs * kc.emulInstrCycles +
           c.pteChanges * kc.pteChangeCycles;
}

/** Weighted mean service demand across the class mix. */
double
meanServiceCycles(const KernelWindowCosts &kc)
{
    double num = 0.0;
    double den = 0.0;
    for (const RequestClass &c : requestClasses) {
        num += static_cast<double>(c.weight) *
               static_cast<double>(classServiceCycles(c, kc));
        den += static_cast<double>(c.weight);
    }
    return num / den;
}

/** Uniform integer draw in [0, bound] cycles (mean bound/2). All the
 *  arrival processes compose this primitive, so no libm enters the
 *  gap arithmetic. */
std::uint64_t
drawUpTo(Rng &rng, double bound)
{
    if (bound <= 0.0)
        return 0;
    return rng.between(0, static_cast<std::uint64_t>(bound + 0.5));
}

std::size_t
drawClass(Rng &rng, std::uint32_t total_weight)
{
    std::uint64_t pick = rng.below(total_weight);
    for (std::size_t i = 0; i < numRequestClasses; ++i) {
        if (pick < requestClasses[i].weight)
            return i;
        pick -= requestClasses[i].weight;
    }
    return numRequestClasses - 1;
}

/** Two-state Markov-modulated gap source: bursts draw short gaps
 *  (mean g/4), quiet spells long ones (mean 7g/4); a 1/16 flip
 *  probability gives 50/50 stationary occupancy, so the overall mean
 *  gap stays g while arrivals clump. */
struct BurstyState
{
    bool inBurst = true;

    std::uint64_t
    draw(Rng &rng, double gap_mean)
    {
        if (rng.chance(1.0 / 16.0))
            inBurst = !inBurst;
        return inBurst ? drawUpTo(rng, gap_mean / 2.0)
                       : drawUpTo(rng, 7.0 * gap_mean / 2.0);
    }
};

/** Triangle diurnal rate factor across the run: 0.5x at the edges,
 *  1.5x at the midpoint. Position x in [0, 1]. */
double
diurnalFactor(double x)
{
    return x <= 0.5 ? 0.5 + 2.0 * x : 2.5 - 2.0 * x;
}

/** Issue one request's primitive mix through the batched kernel entry
 *  points. `pte_cursor` round-robins the mapped PTE range. */
void
issueRequest(SimKernel &kernel, AddressSpace &space,
             const RequestClass &c, std::vector<Vpn> &vpn_scratch,
             std::uint64_t &pte_cursor)
{
    if (c.syscalls)
        kernel.syscallBatch(c.syscalls);
    if (c.traps)
        kernel.trapBatch(c.traps);
    if (c.exceptions)
        kernel.otherExceptionBatch(c.exceptions);
    if (c.threadSwitches)
        kernel.threadSwitchBatch(c.threadSwitches);
    if (c.tasOps)
        kernel.emulateTestAndSetBatch(c.tasOps);
    if (c.emulInstrs)
        kernel.emulateSingleInstructionsBatch(c.emulInstrs);
    if (c.pteChanges) {
        vpn_scratch.clear();
        for (std::uint32_t i = 0; i < c.pteChanges; ++i)
            vpn_scratch.push_back(trafficPteBase +
                                  pte_cursor++ % trafficPtePages);
        PageProt prot;
        prot.writable = (pte_cursor & 1) != 0;
        kernel.pteChangeBatch(space, vpn_scratch, prot);
    }
}

/** One retained slowest-request exemplar. */
struct SlowRequest
{
    std::uint64_t id = 0;
    const char *cls = "";
    Cycles arrival = 0;
    Cycles wait = 0;
    Cycles service = 0;

    Cycles latency() const { return wait + service; }
};

/** Keep the top-K slowest requests, ordered latency desc then id asc
 *  (ties resolve to the earliest request, keeping the list stable
 *  under any insertion order). */
void
keepSlowest(std::vector<SlowRequest> &top, std::size_t k,
            const SlowRequest &r)
{
    if (k == 0)
        return;
    auto slower = [](const SlowRequest &a, const SlowRequest &b) {
        if (a.latency() != b.latency())
            return a.latency() > b.latency();
        return a.id < b.id;
    };
    if (top.size() == k && !slower(r, top.back()))
        return;
    top.insert(std::upper_bound(top.begin(), top.end(), r, slower), r);
    if (top.size() > k)
        top.pop_back();
}

/** Stable per-cell seed: mixes machine identity and level index into
 *  the sweep seed without touching std::hash (implementation-defined
 *  ordering would break cross-build determinism). */
std::uint64_t
cellSeed(std::uint64_t sweep_seed, MachineId m, std::size_t level_idx)
{
    std::uint64_t s = sweep_seed;
    s ^= (static_cast<std::uint64_t>(m) + 1) * 0x9e3779b97f4a7c15ULL;
    s ^= (static_cast<std::uint64_t>(level_idx) + 1) *
         0xc2b2ae3d27d4eb4fULL;
    return s;
}

Json
slowRequestsJson(const std::vector<SlowRequest> &top)
{
    Json arr = Json::array();
    for (const SlowRequest &r : top) {
        Json e = Json::object();
        e.set("id", Json(r.id));
        e.set("class", Json(r.cls));
        e.set("arrival_cycle", Json(r.arrival));
        e.set("wait_cycles", Json(r.wait));
        e.set("service_cycles", Json(r.service));
        e.set("latency_cycles", Json(r.latency()));
        arr.push(e);
    }
    return arr;
}

/** Simulate one (machine × load level) cell and emit its JSON. */
Json
runCell(const TrafficConfig &cfg, MachineId mid, std::size_t level_idx)
{
    const double level = cfg.levels[level_idx];
    const MachineDesc desc = makeMachine(mid);
    const KernelWindowCosts kc = kernelWindowCosts(desc);
    const double mean_service = meanServiceCycles(kc);
    const std::uint64_t n = cfg.requestsPerLevel;
    const std::uint32_t total_weight = totalClassWeight();

    SimKernel kernel(desc);
    AddressSpace &space = kernel.createSpace("traffic");
    space.mapRange(trafficPteBase, trafficPtePages, 0x50000, {});

    // Own counter session per cell (the os_model idiom): enable()
    // resets this worker thread's counter file; restore on exit.
    bool ctrs_were_on = HwCounters::instance().enabled();
    HwCounters::instance().enable();
    CounterSet ctr_base = HwCounters::instance().snapshot();

    Rng rng(cellSeed(cfg.seed, mid, level_idx));
    BurstyState bursty;

    Histogram latency_all;
    Histogram wait_all;
    std::array<Histogram, numRequestClasses> latency_class;
    std::vector<SlowRequest> slowest;
    std::vector<Vpn> vpn_scratch;
    std::uint64_t pte_cursor = 0;

    Cycles server_free = 0;
    Cycles last_finish = 0;
    std::uint64_t max_depth = 0;

    const bool open = cfg.mode == TrafficMode::Open;
    // Open loop: offered rate = level × capacity.
    const double gap_mean = level > 0.0 ? mean_service / level : 0.0;
    // Closed loop: `level` rounds to the client population.
    const std::uint64_t clients =
        std::max<std::uint64_t>(1,
            static_cast<std::uint64_t>(level + 0.5));
    const double think_bound = 2.0 * cfg.thinkFactor * mean_service;

    Cycles next_arrival = 0;
    std::vector<Cycles> open_finishes; ///< FIFO window for queue depth
    std::size_t open_head = 0;
    std::vector<Cycles> next_submit;
    if (open) {
        open_finishes.reserve(n);
    } else {
        next_submit.resize(clients);
        for (std::uint64_t c = 0; c < clients; ++c)
            next_submit[c] = drawUpTo(rng, think_bound);
    }

    for (std::uint64_t j = 0; j < n; ++j) {
        Cycles arrival;
        std::uint64_t client = 0;
        std::uint64_t depth;
        if (open) {
            arrival = next_arrival;
            double bound;
            switch (cfg.arrival) {
              case TrafficArrival::Uniform:
                bound = 2.0 * gap_mean;
                next_arrival += drawUpTo(rng, bound);
                break;
              case TrafficArrival::Bursty:
                next_arrival += bursty.draw(rng, gap_mean);
                break;
              case TrafficArrival::Diurnal: {
                double x = n > 1
                    ? static_cast<double>(j) /
                      static_cast<double>(n - 1)
                    : 0.5;
                bound = 2.0 * gap_mean / diurnalFactor(x);
                next_arrival += drawUpTo(rng, bound);
                break;
              }
            }
            while (open_head < open_finishes.size() &&
                   open_finishes[open_head] <= arrival)
                ++open_head;
            depth = open_finishes.size() - open_head + 1;
        } else {
            client = 0;
            for (std::uint64_t c = 1; c < clients; ++c) {
                if (next_submit[c] < next_submit[client])
                    client = c;
            }
            arrival = next_submit[client];
            // Queue depth when the server picks this request up:
            // every client already waiting to submit by then. At the
            // arrival instant itself only ties with the argmin would
            // count, which would read ~1 even fully saturated.
            const Cycles start_at = std::max(arrival, server_free);
            depth = 0;
            for (std::uint64_t c = 0; c < clients; ++c) {
                if (next_submit[c] <= start_at)
                    ++depth;
            }
        }

        const std::size_t cls_idx = drawClass(rng, total_weight);
        const RequestClass &cls = requestClasses[cls_idx];

        const Cycles start = std::max(arrival, server_free);
        const Cycles before = kernel.elapsedCycles();
        issueRequest(kernel, space, cls, vpn_scratch, pte_cursor);
        const Cycles service = kernel.elapsedCycles() - before;
        const Cycles finish = start + service;
        const Cycles wait = start - arrival;

        server_free = finish;
        last_finish = std::max(last_finish, finish);
        max_depth = std::max(max_depth, depth);
        latency_all.sample(wait + service);
        latency_class[cls_idx].sample(wait + service);
        wait_all.sample(wait);
        keepSlowest(slowest, cfg.exemplars,
                    {j, cls.name, arrival, wait, service});

        if (open)
            open_finishes.push_back(finish);
        else
            next_submit[client] = finish + drawUpTo(rng, think_bound);
    }

    CounterSet events =
        HwCounters::instance().snapshot().delta(ctr_base);
    Reconciliation recon = reconcileKernelWindow(
        kc, events, kernel.primitiveCycles());
    HwCounters::instance().disable();
    HwCounters::instance().reset();
    if (ctrs_were_on)
        HwCounters::instance().resume();

    const double clock_hz = desc.clock.mhz() * 1e6;
    const double elapsed_s =
        desc.clock.cyclesToMicros(last_finish) / 1e6;
    const double offered_rps = open
        ? (mean_service > 0.0 ? level * clock_hz / mean_service : 0.0)
        : static_cast<double>(clients) * clock_hz /
              (cfg.thinkFactor * mean_service + mean_service);

    Json cell = Json::object();
    cell.set("load", Json(level));
    cell.set("requests", Json(n));
    cell.set("offered_rps", Json(offered_rps));
    cell.set("elapsed_seconds", Json(elapsed_s));
    cell.set("throughput_rps",
             Json(elapsed_s > 0.0 ? static_cast<double>(n) / elapsed_s
                                  : 0.0));
    cell.set("mean_service_cycles", Json(mean_service));
    cell.set("max_queue_depth", Json(max_depth));
    Json lat = Json::object();
    lat.set("all", latency_all.toJson());
    Json per_class = Json::object();
    for (std::size_t i = 0; i < numRequestClasses; ++i)
        per_class.set(requestClasses[i].name,
                      latency_class[i].toJson());
    lat.set("per_class", per_class);
    cell.set("latency_cycles", lat);
    cell.set("wait_cycles", wait_all.toJson());
    cell.set("kernel_window", recon.toJson());
    cell.set("slowest_requests", slowRequestsJson(slowest));
    return cell;
}

} // namespace

const char *
trafficArrivalName(TrafficArrival a)
{
    switch (a) {
      case TrafficArrival::Uniform:
        return "uniform";
      case TrafficArrival::Bursty:
        return "bursty";
      case TrafficArrival::Diurnal:
        return "diurnal";
    }
    return "?";
}

const char *
trafficModeName(TrafficMode m)
{
    return m == TrafficMode::Open ? "open" : "closed";
}

Json
buildTrafficDoc(const TrafficConfig &cfg, ParallelRunner &runner)
{
    std::vector<MachineId> machines = cfg.machines;
    if (machines.empty()) {
        for (const MachineDesc &d : table1Machines())
            machines.push_back(d.id);
    }

    std::vector<std::function<Json()>> tasks;
    tasks.reserve(machines.size() * cfg.levels.size());
    for (MachineId m : machines) {
        for (std::size_t li = 0; li < cfg.levels.size(); ++li)
            tasks.push_back([&cfg, m, li] { return runCell(cfg, m, li); });
    }
    std::vector<Json> cells = runner.map<Json>(tasks);

    Json config = Json::object();
    config.set("mode", Json(trafficModeName(cfg.mode)));
    config.set("arrival", Json(trafficArrivalName(cfg.arrival)));
    config.set("requests_per_level", Json(cfg.requestsPerLevel));
    Json levels = Json::array();
    for (double l : cfg.levels)
        levels.push(Json(l));
    config.set("levels", levels);
    config.set("think_factor", Json(cfg.thinkFactor));
    config.set("seed", Json(cfg.seed));
    config.set("exemplars",
               Json(static_cast<std::uint64_t>(cfg.exemplars)));
    Json mach_names = Json::array();
    for (MachineId m : machines)
        mach_names.push(Json(machineSlug(m)));
    config.set("machines", mach_names);

    Json doc = Json::object();
    doc.set("schema_version", Json(std::uint64_t{1}));
    doc.set("kind", Json("traffic"));
    doc.set("config", config);
    doc.set("total_requests",
            Json(cfg.requestsPerLevel *
                 static_cast<std::uint64_t>(tasks.size())));

    Json mach_arr = Json::array();
    std::size_t idx = 0;
    for (MachineId m : machines) {
        Json entry = Json::object();
        entry.set("machine", Json(machineSlug(m)));
        Json load_levels = Json::array();
        for (std::size_t li = 0; li < cfg.levels.size(); ++li)
            load_levels.push(cells[idx++]);
        entry.set("load_levels", load_levels);
        mach_arr.push(entry);
    }
    doc.set("machines", mach_arr);
    return doc;
}

std::uint64_t
replayEventMix(SimKernel &kernel, AddressSpace *pte_space,
               std::uint64_t total_events, std::uint64_t seed,
               bool sample_each)
{
    Rng rng(seed);
    std::uint64_t issued = 0;
    std::vector<Vpn> vpns;
    std::uint64_t cursor = 0;
    const std::uint64_t kinds = pte_space ? 7 : 6;
    while (issued < total_events) {
        std::uint64_t n = rng.between(1, 256);
        switch (rng.below(kinds)) {
          case 0:
            kernel.syscallBatch(n, sample_each);
            break;
          case 1:
            kernel.trapBatch(n, sample_each);
            break;
          case 2:
            kernel.otherExceptionBatch(n, sample_each);
            break;
          case 3:
            kernel.threadSwitchBatch(n, sample_each);
            break;
          case 4:
            kernel.emulateTestAndSetBatch(n, sample_each);
            break;
          case 5:
            kernel.emulateSingleInstructionsBatch(n, sample_each);
            break;
          default: {
            vpns.clear();
            for (std::uint64_t i = 0; i < n; ++i)
                vpns.push_back(trafficPteBase +
                               cursor++ % trafficPtePages);
            PageProt prot;
            prot.writable = (cursor & 1) != 0;
            kernel.pteChangeBatch(*pte_space, vpns, prot);
            break;
          }
        }
        issued += n;
    }
    return issued;
}

} // namespace aosd
