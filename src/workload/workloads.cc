#include "workload/app_profile.hh"

#include "sim/logging.hh"

/*
 * Profile calibration
 * -------------------
 * Direct activity counts (service calls, lock operations, "other
 * exception" totals) are taken from the paper's Mach 2.5 rows, which
 * report what the applications *do* rather than what any OS structure
 * turns that into. Structural parameters of the decomposed system
 * (rpcFraction, serversPerRpc, switchesPerRpc, emulInstrsPerCall) are
 * derived from the ratios in the paper's own discussion: each Unix
 * call becomes at least two system calls and two context switches via
 * a server RPC; open/close on the Andrew scripts involve two local
 * RPCs (Unix server + file cache manager); parthenon's emulated
 * instruction count is its test&set traffic, nearly identical on both
 * systems. User-computation budgets are set so the *monolithic*
 * elapsed times land near the paper; decomposed elapsed times are
 * then emergent.
 */

namespace aosd
{

std::vector<AppProfile>
table7Workloads()
{
    std::vector<AppProfile> apps;

    {
        AppProfile a;
        a.name = "spellcheck-1";
        a.unixServiceCalls = 802;
        a.blockFraction = 0.10;
        a.pageFaults = 800;
        a.deviceInterrupts = 1400;
        a.userInstructionsK = 85000;
        a.ioWaitSeconds = 0.4;
        a.intraSpaceSwitches = 100;
        a.workingSetPages = 20;
        a.kernelTouchesPerCall = 5;
        a.rpcFraction = 1.0;
        a.serversPerRpc = 1.18;
        a.switchesPerRpc = 1.35;
        a.emulInstrsPerCall = 17.0;
        a.emulInstrsMonolithic = 39;
        a.serverInstrsPerRpc = 2000;
        apps.push_back(a);
    }
    {
        AppProfile a;
        a.name = "latex-150";
        a.unixServiceCalls = 5513;
        a.blockFraction = 0.15;
        a.pageFaults = 4000;
        a.deviceInterrupts = 4500;
        a.userInstructionsK = 3520000;
        a.ioWaitSeconds = 1.5;
        a.intraSpaceSwitches = 620;
        a.workingSetPages = 30;
        a.kernelTouchesPerCall = 5;
        a.rpcFraction = 1.0;
        a.serversPerRpc = 1.50;
        a.switchesPerRpc = 1.96;
        a.emulInstrsPerCall = 39.0;
        a.emulInstrsMonolithic = 320;
        a.serverInstrsPerRpc = 2000;
        apps.push_back(a);
    }
    {
        AppProfile a;
        a.name = "andrew-local";
        a.unixServiceCalls = 35168;
        a.blockFraction = 0.035;
        a.pageFaults = 20000;
        a.deviceInterrupts = 41000;
        a.userInstructionsK = 3500000;
        a.ioWaitSeconds = 4.0;
        a.intraSpaceSwitches = 2300;
        a.workingSetPages = 28;
        a.kernelTouchesPerCall = 4;
        a.rpcFraction = 0.84;
        a.serversPerRpc = 1.19;
        a.switchesPerRpc = 1.18;
        a.emulInstrsPerCall = 14.0;
        a.emulInstrsMonolithic = 331;
        a.serverInstrsPerRpc = 2500;
        apps.push_back(a);
    }
    {
        AppProfile a;
        a.name = "andrew-remote";
        a.unixServiceCalls = 35498;
        a.blockFraction = 0.045;
        a.pageFaults = 18000;
        a.deviceInterrupts = 41000;
        a.userInstructionsK = 3500000;
        a.ioWaitSeconds = 20.0;
        a.intraSpaceSwitches = 2800;
        a.workingSetPages = 28;
        a.kernelTouchesPerCall = 5;
        a.rpcFraction = 1.0;
        a.serversPerRpc = 2.26; // Unix server + file cache manager
        a.switchesPerRpc = 1.61;
        a.emulInstrsPerCall = 45.0;
        a.emulInstrsMonolithic = 410;
        a.serverInstrsPerRpc = 6000;
        apps.push_back(a);
    }
    {
        AppProfile a;
        a.name = "link-vmunix";
        a.unixServiceCalls = 13099;
        a.blockFraction = 0.012;
        a.pageFaults = 6000;
        a.deviceInterrupts = 7000;
        a.userInstructionsK = 1230000;
        a.ioWaitSeconds = 1.0;
        a.intraSpaceSwitches = 450;
        a.workingSetPages = 32;
        a.kernelTouchesPerCall = 4;
        a.rpcFraction = 1.0;
        a.serversPerRpc = 1.03;
        a.switchesPerRpc = 1.82;
        a.emulInstrsPerCall = 12.6;
        a.emulInstrsMonolithic = 137;
        a.serverInstrsPerRpc = 2000;
        apps.push_back(a);
    }
    {
        AppProfile a;
        a.name = "parthenon (1 thread)";
        a.unixServiceCalls = 257;
        a.blockFraction = 0.10;
        a.pageFaults = 300;
        a.deviceInterrupts = 200;
        a.userInstructionsK = 950000;
        a.ioWaitSeconds = 0.2;
        a.threads = 1;
        a.intraSpaceSwitches = 130;
        a.lockOps = 1395555; // the paper's emulated-instruction count
        a.workingSetPages = 26;
        a.kernelTouchesPerCall = 5;
        a.rpcFraction = 1.0;
        a.serversPerRpc = 2.54; // mach vm/thread calls dominate
        a.switchesPerRpc = 2.0;
        a.emulInstrsPerCall = 44.0;
        apps.push_back(a);
    }
    {
        AppProfile a;
        a.name = "parthenon (10 threads)";
        a.unixServiceCalls = 268;
        a.blockFraction = 0.10;
        a.pageFaults = 400;
        a.deviceInterrupts = 300;
        a.userInstructionsK = 860000;
        a.ioWaitSeconds = 0.2;
        a.threads = 10;
        a.intraSpaceSwitches = 980;
        a.lockOps = 1254087;
        a.workingSetPages = 26;
        a.kernelTouchesPerCall = 5;
        a.rpcFraction = 1.0;
        a.serversPerRpc = 2.56;
        a.switchesPerRpc = 2.0;
        a.emulInstrsPerCall = 300.0;
        apps.push_back(a);
    }
    return apps;
}

AppProfile
workloadByName(const std::string &name)
{
    for (const AppProfile &a : table7Workloads())
        if (a.name == name)
            return a;
    fatal("unknown workload: %s", name.c_str());
}

} // namespace aosd
