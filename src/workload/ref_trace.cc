#include "workload/ref_trace.hh"

namespace aosd
{

RefTraceResult
runRefTrace(const MachineDesc &machine, const RefTraceConfig &cfg)
{
    Tlb tlb(machine.tlb);
    Rng rng(cfg.seed);
    RefTraceResult r;

    // The replay's cycle domain: one cycle per reference, plus refill
    // cycles on misses and purge cycles on untagged-TLB switches.
    Cycles refill_cycles = 0; // cumulative, the occupancy aux channel
    bool sampling = cfg.samplingIntervalCycles > 0;
    bool ctrs_were_on = HwCounters::instance().enabled();
    if (sampling)
        HwCounters::instance().enable(); // resets
    CounterSampler &sampler = CounterSampler::instance();
    if (sampling)
        sampler.begin({cfg.samplingIntervalCycles,
                       cfg.samplerCapacity});

    Asid current = 1;
    double switch_prob =
        static_cast<double>(cfg.switchesPerMillion) / 1e6;

    auto touch = [&](Vpn vpn, Asid asid, bool system) {
        TlbLookup look = tlb.lookup(vpn, asid, system);
        r.cycles += 1 + look.missCycles;
        if (system) {
            ++r.systemRefs;
            r.systemMisses += !look.hit;
        } else {
            ++r.userRefs;
            r.userMisses += !look.hit;
        }
        if (!look.hit) {
            refill_cycles += look.missCycles;
            tlb.insert(vpn, asid, vpn, {});
        }
    };

    for (std::uint64_t i = 0; i < cfg.references; ++i) {
        if (rng.chance(switch_prob)) {
            current = 1 + static_cast<Asid>(rng.below(cfg.processes));
            r.cycles += tlb.switchContext(); // purges when untagged
        }

        bool system = rng.chance(cfg.systemFraction);
        if (system) {
            // System references: shared space (ASID 0), mild locality
            // over a sprawling pool.
            Vpn vpn;
            if (rng.chance(cfg.systemHotProbability))
                vpn = 0x100000 + rng.below(cfg.systemHotPages);
            else
                vpn = 0x110000 + rng.below(cfg.systemPoolPages);
            touch(vpn, 0, true);
        } else {
            // User references: per-process tight working set.
            Vpn base = 0x1000 * current;
            Vpn vpn;
            if (rng.chance(cfg.userHotProbability))
                vpn = base + rng.below(cfg.userHotPages);
            else
                vpn = base + 0x400 + rng.below(cfg.userColdPages);
            touch(vpn, current, false);
        }
        sampler.tick(r.cycles,
                     static_cast<double>(refill_cycles));
    }

    if (sampling) {
        sampler.finish(r.cycles,
                       static_cast<double>(refill_cycles));
        r.timeseries = sampler.series();
        HwCounters::instance().disable();
        HwCounters::instance().reset();
        if (ctrs_were_on)
            HwCounters::instance().resume();
    }
    return r;
}

} // namespace aosd
