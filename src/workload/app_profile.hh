/**
 * @file
 * Application activity profiles for the §5 workload study (Table 7).
 *
 * We cannot run 1991 binaries, so each application is described by the
 * operating-system-visible activity stream it generates: Unix service
 * calls, blocking behaviour, page faults and interrupts, user
 * computation, thread and lock traffic, and memory footprints. The
 * *same* profile is executed against both OS structure models; every
 * count in Table 7 is then produced by the instrumented kernel, not by
 * the profile. Knobs that could not be derived from first principles
 * were fitted against the paper's Mach 2.5 (monolithic) column — the
 * Mach 3.0 behaviour is emergent.
 */

#ifndef AOSD_WORKLOAD_APP_PROFILE_HH
#define AOSD_WORKLOAD_APP_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace aosd
{

/** OS-visible behaviour of one application run. */
struct AppProfile
{
    std::string name;

    /** Unix service calls the program makes (open/read/write/...). */
    std::uint64_t unixServiceCalls = 0;

    /** Fraction of service calls that block on I/O (each costs a
     *  switch away and back in a monolithic kernel). */
    double blockFraction = 0.1;

    /** User page faults + device interrupts ("other exceptions"
     *  excluding user TLB misses). */
    std::uint64_t pageFaults = 0;
    std::uint64_t deviceInterrupts = 0;

    /** User computation, in thousands of abstract instructions. */
    std::uint64_t userInstructionsK = 0;

    /** Time blocked on disk/network with no CPU use, seconds. */
    double ioWaitSeconds = 0.0;

    /** Kernel threads the application creates. */
    std::uint32_t threads = 1;
    /** Same-address-space thread switches (quantum + voluntary). */
    std::uint64_t intraSpaceSwitches = 0;

    /** User-level lock acquire/release pairs (parthenon's or-parallel
     *  search). On machines without an atomic instruction each pair is
     *  kernel-emulated. */
    std::uint64_t lockOps = 0;

    /** Instructions the monolithic kernel emulates anyway (unaligned
     *  accesses and the like; small, from the paper's 2.5 column). */
    std::uint64_t emulInstrsMonolithic = 0;

    /** TLB working set of the application itself, in pages. */
    std::uint32_t workingSetPages = 24;

    /** Mapped kernel data pages this app's service calls touch per
     *  call (buffer cache, vm objects, page tables). */
    std::uint32_t kernelTouchesPerCall = 5;

    // ---- small-kernel (Mach 3.0) structure parameters --------------
    /** Fraction of Unix calls that leave the emulation library and RPC
     *  to a server (cached operations stay local). */
    double rpcFraction = 1.0;
    /** Servers involved per RPC-bound call (open/close hit both the
     *  Unix server and the file cache manager: 2). */
    double serversPerRpc = 1.0;
    /** Address-space switches per server RPC (2 = strict send/reply
     *  handoff; lower when replies batch, fitted from the paper). */
    double switchesPerRpc = 2.0;
    /** Instructions of the transparent emulation library the kernel
     *  emulates per Unix call (paper's "Emul. Instrs" column). */
    double emulInstrsPerCall = 20.0;
    /** Server-side user-mode instructions per RPC. */
    std::uint64_t serverInstrsPerRpc = 1500;
};

/** The seven workloads of Table 7, in paper order. */
std::vector<AppProfile> table7Workloads();

/** Look one up by name (fatal if unknown). */
AppProfile workloadByName(const std::string &name);

} // namespace aosd

#endif // AOSD_WORKLOAD_APP_PROFILE_HH
