/**
 * @file
 * The run-time systems §3 says are overloading VM protection bits:
 * concurrent garbage collection [Ellis et al. 88], incremental
 * checkpointing [Li et al. 90], and transaction locking [Radin 82] /
 * recoverable virtual memory [Eppinger 89].
 *
 * Each client is a small, functional user-level system built on
 * VmManager's fault-reflection path. They exist to measure the §3.3
 * trade-off end to end: these techniques are exactly as cheap as the
 * machine's trap + PTE-change + kernel-crossing primitives let them
 * be.
 */

#ifndef AOSD_OS_VM_VM_CLIENTS_HH
#define AOSD_OS_VM_VM_CLIENTS_HH

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "os/vm/vm_manager.hh"

namespace aosd
{

/**
 * Concurrent GC read barrier (Appel-Ellis-Li style): from-space pages
 * are protected; the first access scans/forwards the page and unlocks
 * it. Mutator accesses after scanning are free.
 */
class GcBarrier
{
  public:
    GcBarrier(VmManager &vm, AddressSpace &heap_space);

    /** Begin a collection over `pages` pages at `base`: protect all. */
    void startCollection(Vpn base, std::uint64_t pages);

    /** Mutator access; may trigger a scan fault. */
    void mutatorAccess(Vpn vpn, bool write);

    /** Pages scanned so far this collection. */
    std::uint64_t scannedPages() const { return scanned.size(); }

    /** All from-space pages scanned? */
    bool collectionDone() const;

    /** Simulated instructions to scan one page's objects. */
    static constexpr std::uint64_t scanInstructionsPerPage = 2000;

  private:
    VmManager &vm;
    AddressSpace &space;
    Vpn regionBase = 0;
    std::uint64_t regionPages = 0;
    std::set<Vpn> scanned;
};

/**
 * Incremental checkpoint [Li-Naughton-Plank]: write-protect the whole
 * address space at checkpoint start; the first write to each page
 * copies it to the checkpoint buffer and re-enables writes, letting
 * the application run concurrently with checkpoint I/O.
 */
class IncrementalCheckpoint
{
  public:
    IncrementalCheckpoint(VmManager &vm, AddressSpace &space);

    /** Take a checkpoint of `pages` pages at `base`. */
    void begin(Vpn base, std::uint64_t pages);

    /** Application write; first touch copies the page. */
    void applicationWrite(Vpn vpn);

    /** Pages copied because the app wrote them before the checkpoint
     *  drained. */
    std::uint64_t copiedPages() const { return copied.size(); }

    /** Pages still clean (checkpointer can write them lazily). */
    std::uint64_t cleanPages() const;

  private:
    VmManager &vm;
    AddressSpace &space;
    Vpn regionBase = 0;
    std::uint64_t regionPages = 0;
    std::set<Vpn> copied;
};

/**
 * Page-granular two-phase transaction locking: reads take read locks
 * (pages protected read-only until then), writes take write locks.
 * Conflicting lock requests from another transaction abort it
 * (simple wound-wait-free model for the cost study).
 */
class TransactionVm
{
  public:
    TransactionVm(VmManager &vm, AddressSpace &space, Vpn base,
                  std::uint64_t pages);

    using TxId = std::uint32_t;

    TxId begin();

    /** @return false if the access conflicts and the tx aborts. */
    bool read(TxId tx, Vpn vpn);
    bool write(TxId tx, Vpn vpn);

    /** Commit: release locks, clear protections. */
    void commit(TxId tx);

    std::uint64_t aborts() const { return abortCount; }
    std::uint64_t lockFaults() const { return faultCount; }

  private:
    enum class LockMode
    {
        None,
        Read,
        Write,
    };

    struct PageLock
    {
        LockMode mode = LockMode::None;
        std::set<TxId> readers;
        TxId writer = 0;
    };

    void abort(TxId tx);

    VmManager &vm;
    AddressSpace &space;
    Vpn regionBase;
    std::uint64_t regionPages;
    std::map<Vpn, PageLock> locks;
    std::set<TxId> liveTx;
    TxId nextTx = 1;
    std::uint64_t abortCount = 0;
    std::uint64_t faultCount = 0;
};

} // namespace aosd

#endif // AOSD_OS_VM_VM_CLIENTS_HH
