#include "os/vm/dsm.hh"

#include "mem/page_table.hh"
#include "sim/logging.hh"

namespace aosd
{

IvyDsm::IvyDsm(const MachineDesc &machine, std::uint32_t nodes,
               std::uint64_t pages, EthernetDesc link)
    : desc(machine), rpc(machine, RpcConfig{link})
{
    if (nodes == 0)
        fatal("DSM needs at least one node");
    for (std::uint32_t i = 0; i < nodes; ++i) {
        kernels.push_back(std::make_unique<SimKernel>(machine));
        SimKernel &k = *kernels.back();
        AddressSpace &space = k.createSpace("dsm");
        PageProt prot;
        prot.writable = (i == 0);
        space.mapRange(0, pages, /*pfn=*/0x5000, prot);
        k.contextSwitchTo(space);
        k.resetAccounting(); // setup costs are not part of the run
    }
    pageStates.resize(pages);
    for (auto &ps : pageStates) {
        ps.owner = 0;
        ps.hasCopy.assign(nodes, false);
        ps.hasCopy[0] = true;
        ps.writerValid = true; // node 0 starts owning everything R/W
    }
}

double
IvyDsm::pageTransferUs() const
{
    // Request message out, page-sized reply back.
    return rpc.roundTrip(32, static_cast<std::uint32_t>(pageBytes))
        .totalUs();
}

double
IvyDsm::controlMessageUs() const
{
    return rpc.roundTrip(32, 8).totalUs();
}

DsmAccess
IvyDsm::access(std::uint32_t node, std::uint64_t page) const
{
    const PageState &ps = pageStates[page];
    if (ps.owner == node && ps.writerValid)
        return DsmAccess::Write;
    if (ps.hasCopy[node])
        return DsmAccess::Read;
    return DsmAccess::None;
}

std::uint32_t
IvyDsm::owner(std::uint64_t page) const
{
    return pageStates[page].owner;
}

std::uint32_t
IvyDsm::copyHolders(std::uint64_t page) const
{
    std::uint32_t n = 0;
    for (bool b : pageStates[page].hasCopy)
        n += b;
    return n;
}

double
IvyDsm::read(std::uint32_t node, std::uint64_t page)
{
    PageState &ps = pageStates[page];
    counters.inc("reads");
    if (access(node, page) != DsmAccess::None)
        return desc.clock.cyclesToMicros(1); // local hit

    // Read fault: trap locally, fetch a replica from the owner, and
    // downgrade the owner's mapping to read-only (s3: "the writer's
    // copy [is] changed back to read-only").
    counters.inc("read_faults");
    SimKernel &k = *kernels[node];
    k.trap();
    double us = pageTransferUs();
    counters.inc("page_transfers");

    SimKernel &ok = *kernels[ps.owner];
    if (ps.writerValid) {
        PageProt ro;
        ro.writable = false;
        ok.pteChange(ok.currentSpace(), page, ro);
        ps.writerValid = false;
    }
    ps.hasCopy[node] = true;
    // Map the replica read-only locally.
    PageProt ro;
    ro.writable = false;
    k.pteChange(k.currentSpace(), page, ro);
    return us + k.machine().clock.cyclesToMicros(
                    sharedCostDb().cycles(desc.id, Primitive::Trap));
}

double
IvyDsm::write(std::uint32_t node, std::uint64_t page)
{
    PageState &ps = pageStates[page];
    counters.inc("writes");
    if (access(node, page) == DsmAccess::Write)
        return desc.clock.cyclesToMicros(1);

    // Write fault: invalidate every replica except the writer's,
    // transfer ownership (and the page if the writer has no copy).
    counters.inc("write_faults");
    SimKernel &k = *kernels[node];
    k.trap();
    double us = 0.0;

    if (!ps.hasCopy[node]) {
        us += pageTransferUs();
        counters.inc("page_transfers");
    }

    for (std::uint32_t n = 0; n < nodeCount(); ++n) {
        if (n == node || !ps.hasCopy[n])
            continue;
        us += controlMessageUs();
        counters.inc("invalidations");
        SimKernel &nk = *kernels[n];
        nk.tlb().invalidate(page, nk.currentSpace().asid());
        ps.hasCopy[n] = false;
    }

    ps.owner = node;
    ps.hasCopy[node] = true;
    ps.writerValid = true;
    PageProt rw;
    rw.writable = true;
    k.pteChange(k.currentSpace(), page, rw);
    return us + k.machine().clock.cyclesToMicros(
                    sharedCostDb().cycles(desc.id, Primitive::Trap));
}

bool
IvyDsm::coherent() const
{
    for (const auto &ps : pageStates) {
        if (ps.writerValid) {
            // Writer must be the only holder.
            std::uint32_t holders = 0;
            for (bool b : ps.hasCopy)
                holders += b;
            if (holders != 1 || !ps.hasCopy[ps.owner])
                return false;
        }
        if (!ps.hasCopy[ps.owner] && ps.writerValid)
            return false;
    }
    return true;
}

} // namespace aosd
