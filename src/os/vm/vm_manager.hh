/**
 * @file
 * Virtual memory manager (§3).
 *
 * Implements the fault pipeline modern OSes overload protection bits
 * for: copy-on-write message buffers (Accent/Mach), user-level fault
 * reflection (garbage collection, checkpointing, recoverable VM,
 * transaction locking), and efficient protection changes. Every fault
 * is charged through SimKernel's simulated primitives: a COW fault is
 * a trap + a page copy + a PTE change; a reflected fault additionally
 * crosses the kernel boundary twice to reach the user handler (§3:
 * "systems must find a way of quickly reflecting page faults back to
 * the user level").
 */

#ifndef AOSD_OS_VM_VM_MANAGER_HH
#define AOSD_OS_VM_VM_MANAGER_HH

#include <cstdint>
#include <functional>
#include <map>

#include "mem/phys_mem.hh"
#include "os/kernel/kernel.hh"

namespace aosd
{

/** What the fault pipeline did with a fault. */
enum class FaultResult
{
    NotMapped,        ///< segmentation violation
    ProtectionError,  ///< mapped but access forbidden, no handler
    CopiedOnWrite,    ///< COW break: page duplicated, write retried
    ReflectedToUser,  ///< delivered to a registered user-level handler
    Resolved,         ///< demand-zero fill or simple upgrade
};

/** User-level fault handler: returns true if it resolved the fault. */
using UserFaultHandler =
    std::function<bool(AddressSpace &, Vpn, bool write)>;

/** Per-space VM management on top of one SimKernel. */
class VmManager
{
  public:
    /** @param mem optional frame allocator; when absent, frames come
     *  from an internal monotonic counter. */
    explicit VmManager(SimKernel &kernel, PhysMem *mem = nullptr);

    /** Map `pages` demand-zero pages at vpn with `prot`. */
    void mapZeroFill(AddressSpace &space, Vpn vpn, std::uint64_t pages,
                     PageProt prot);

    /**
     * Share `pages` copy-on-write from src to dst (the Mach large-
     * message optimization, §3): both mappings become read-only and
     * marked COW; the first write by either side copies.
     */
    void shareCopyOnWrite(AddressSpace &src, Vpn src_vpn,
                          AddressSpace &dst, Vpn dst_vpn,
                          std::uint64_t pages);

    /** Change protection (charges the PTE-change primitive, keeps TLB
     *  and virtual cache consistent). */
    void protect(AddressSpace &space, Vpn vpn, std::uint64_t pages,
                 PageProt prot);

    /** Register a user-level handler for faults in `space` (external
     *  pager / GC barrier style). */
    void setUserHandler(AddressSpace &space, UserFaultHandler handler);

    /** Deliver a memory access; faults run the pipeline. */
    FaultResult access(AddressSpace &space, Vpn vpn, bool write);

    /** Frames shared COW right now (for tests). */
    std::uint64_t cowSharedFrames() const;

    SimKernel &kernel() { return sim; }

  private:
    FaultResult handleFault(AddressSpace &space, Vpn vpn, bool write,
                            const Pte &pte);

    Pfn
    allocFrame()
    {
        return physMem ? physMem->alloc() : nextFrame++;
    }

    SimKernel &sim;
    PhysMem *physMem = nullptr;
    Pfn nextFrame = 0x100000;
    /** Reference counts of COW-shared frames. */
    std::map<Pfn, std::uint32_t> cowRefs;
    std::map<const AddressSpace *, UserFaultHandler> handlers;
};

} // namespace aosd

#endif // AOSD_OS_VM_VM_MANAGER_HH
