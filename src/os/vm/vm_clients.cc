#include "os/vm/vm_clients.hh"

#include "mem/cache.hh"
#include "sim/logging.hh"

namespace aosd
{

// ------------------------------------------------------------ GcBarrier

GcBarrier::GcBarrier(VmManager &vm_manager, AddressSpace &heap_space)
    : vm(vm_manager), space(heap_space)
{
    vm.setUserHandler(space, [this](AddressSpace &s, Vpn vpn, bool) {
        if (vpn < regionBase || vpn >= regionBase + regionPages)
            return false; // not a barrier fault
        // Scan/forward the objects on the page, then unprotect it.
        vm.kernel().runUserCode(scanInstructionsPerPage);
        PageProt rw;
        rw.writable = true;
        s.pageTable().protect(vpn, rw);
        scanned.insert(vpn);
        return true;
    });
}

void
GcBarrier::startCollection(Vpn base, std::uint64_t pages)
{
    regionBase = base;
    regionPages = pages;
    scanned.clear();
    PageProt none;
    none.readable = false;
    none.writable = false;
    vm.protect(space, base, pages, none);
}

void
GcBarrier::mutatorAccess(Vpn vpn, bool write)
{
    FaultResult r = vm.access(space, vpn, write);
    if (r == FaultResult::NotMapped)
        panic("GC mutator touched an unmapped page");
}

bool
GcBarrier::collectionDone() const
{
    return scanned.size() == regionPages;
}

// ------------------------------------------------- IncrementalCheckpoint

IncrementalCheckpoint::IncrementalCheckpoint(VmManager &vm_manager,
                                             AddressSpace &ckpt_space)
    : vm(vm_manager), space(ckpt_space)
{
    vm.setUserHandler(space, [this](AddressSpace &s, Vpn vpn,
                                    bool write) {
        if (!write || vpn < regionBase ||
            vpn >= regionBase + regionPages)
            return false;
        // Copy the page into the checkpoint buffer, then re-enable
        // writes so the application proceeds.
        vm.kernel().chargeCycles(
            copyCycles(vm.kernel().machine(), pageBytes));
        PageProt rw;
        rw.writable = true;
        s.pageTable().protect(vpn, rw);
        copied.insert(vpn);
        return true;
    });
}

void
IncrementalCheckpoint::begin(Vpn base, std::uint64_t pages)
{
    regionBase = base;
    regionPages = pages;
    copied.clear();
    PageProt ro;
    ro.writable = false;
    vm.protect(space, base, pages, ro);
}

void
IncrementalCheckpoint::applicationWrite(Vpn vpn)
{
    FaultResult r = vm.access(space, vpn, true);
    if (r == FaultResult::NotMapped)
        panic("checkpoint write to an unmapped page");
}

std::uint64_t
IncrementalCheckpoint::cleanPages() const
{
    return regionPages - copied.size();
}

// ----------------------------------------------------------- TransactionVm

TransactionVm::TransactionVm(VmManager &vm_manager,
                             AddressSpace &tx_space, Vpn base,
                             std::uint64_t pages)
    : vm(vm_manager), space(tx_space), regionBase(base),
      regionPages(pages)
{
    // All pages start inaccessible: every first touch by a
    // transaction is a lock-acquiring fault.
    PageProt none;
    none.readable = false;
    none.writable = false;
    vm.protect(space, base, pages, none);
}

TransactionVm::TxId
TransactionVm::begin()
{
    TxId tx = nextTx++;
    liveTx.insert(tx);
    return tx;
}

bool
TransactionVm::read(TxId tx, Vpn vpn)
{
    if (!liveTx.count(tx))
        return false;
    PageLock &l = locks[vpn];
    if (l.mode == LockMode::Write && l.writer != tx) {
        abort(tx);
        return false;
    }
    if (!l.readers.count(tx) && !(l.mode == LockMode::Write &&
                                  l.writer == tx)) {
        // First touch: the protection fault acquires the read lock.
        ++faultCount;
        vm.kernel().trap();
        PageProt ro;
        ro.writable = false;
        vm.kernel().pteChange(space, vpn, ro);
        if (l.mode == LockMode::None)
            l.mode = LockMode::Read;
        l.readers.insert(tx);
    }
    return true;
}

bool
TransactionVm::write(TxId tx, Vpn vpn)
{
    if (!liveTx.count(tx))
        return false;
    PageLock &l = locks[vpn];
    bool other_writer = l.mode == LockMode::Write && l.writer != tx;
    bool other_readers = false;
    for (TxId r : l.readers)
        other_readers |= r != tx;
    if (other_writer || other_readers) {
        abort(tx);
        return false;
    }
    if (l.mode != LockMode::Write) {
        // Upgrade fault: acquire the write lock.
        ++faultCount;
        vm.kernel().trap();
        PageProt rw;
        rw.writable = true;
        vm.kernel().pteChange(space, vpn, rw);
        l.mode = LockMode::Write;
        l.writer = tx;
        l.readers.insert(tx);
    }
    return true;
}

void
TransactionVm::abort(TxId tx)
{
    ++abortCount;
    commit(tx); // release locks identically
    liveTx.erase(tx);
}

void
TransactionVm::commit(TxId tx)
{
    for (auto &kv : locks) {
        PageLock &l = kv.second;
        if (l.mode == LockMode::Write && l.writer == tx) {
            l.mode = LockMode::None;
            l.writer = 0;
            l.readers.erase(tx);
            // Re-protect for the next transaction.
            PageProt none;
            none.readable = false;
            none.writable = false;
            vm.kernel().pteChange(space, kv.first, none);
        } else if (l.readers.erase(tx)) {
            if (l.readers.empty() && l.mode == LockMode::Read) {
                l.mode = LockMode::None;
                PageProt none;
                none.readable = false;
                none.writable = false;
                vm.kernel().pteChange(space, kv.first, none);
            }
        }
    }
    liveTx.erase(tx);
}

} // namespace aosd
