/**
 * @file
 * Ivy-style distributed shared virtual memory (§3, [Li & Hudak 89]).
 *
 * Pages are replicated read-only across workstation nodes; a write
 * fault runs an invalidation-based coherence protocol: all replicas are
 * invalidated, the writer becomes the unique owner with a read-write
 * mapping. A later remote read faults, re-replicates, and downgrades
 * the owner back to read-only. Faults are charged through each node's
 * SimKernel; protocol messages and page transfers ride the RPC model
 * over the Ethernet, so the end-to-end cost of software coherence on
 * 1991 primitives is visible.
 */

#ifndef AOSD_OS_VM_DSM_HH
#define AOSD_OS_VM_DSM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "net/ethernet.hh"
#include "os/ipc/rpc.hh"
#include "os/kernel/kernel.hh"
#include "sim/stats.hh"

namespace aosd
{

/** A node's access right to a DSM page. */
enum class DsmAccess
{
    None,
    Read,
    Write,
};

/** Ivy coherence manager over N simulated nodes (same machine type). */
class IvyDsm
{
  public:
    /**
     * @param machine   node architecture (all nodes identical)
     * @param nodes     number of workstations
     * @param pages     size of the shared region in pages
     */
    IvyDsm(const MachineDesc &machine, std::uint32_t nodes,
           std::uint64_t pages, EthernetDesc link = {});

    /** Perform a read on `page` from `node`; faults run the protocol.
     *  @return microseconds the operation took on that node. */
    double read(std::uint32_t node, std::uint64_t page);

    /** Perform a write on `page` from `node`. */
    double write(std::uint32_t node, std::uint64_t page);

    DsmAccess access(std::uint32_t node, std::uint64_t page) const;
    std::uint32_t owner(std::uint64_t page) const;
    std::uint32_t copyHolders(std::uint64_t page) const;

    /** Check the single-writer / multiple-reader invariant. */
    bool coherent() const;

    const StatGroup &stats() const { return counters; }
    SimKernel &nodeKernel(std::uint32_t node) { return *kernels[node]; }
    std::uint32_t nodeCount() const
    {
        return static_cast<std::uint32_t>(kernels.size());
    }

  private:
    struct PageState
    {
        std::uint32_t owner = 0;
        std::vector<bool> hasCopy; // per node, read access
        bool writerValid = false;  // owner holds it read-write
    };

    double pageTransferUs() const;
    double controlMessageUs() const;

    MachineDesc desc;
    SrcRpcModel rpc;
    std::vector<std::unique_ptr<SimKernel>> kernels;
    std::vector<PageState> pageStates;
    StatGroup counters{"dsm"};
};

} // namespace aosd

#endif // AOSD_OS_VM_DSM_HH
