#include "os/vm/vm_manager.hh"

#include "mem/cache.hh"
#include "sim/logging.hh"

namespace aosd
{

VmManager::VmManager(SimKernel &kernel, PhysMem *mem)
    : sim(kernel), physMem(mem)
{}

void
VmManager::mapZeroFill(AddressSpace &space, Vpn vpn, std::uint64_t pages,
                       PageProt prot)
{
    for (std::uint64_t i = 0; i < pages; ++i) {
        Pte pte;
        pte.pfn = allocFrame();
        pte.prot = prot;
        space.pageTable().map(vpn + i, pte);
    }
}

void
VmManager::shareCopyOnWrite(AddressSpace &src, Vpn src_vpn,
                            AddressSpace &dst, Vpn dst_vpn,
                            std::uint64_t pages)
{
    PageProt ro;
    ro.readable = true;
    ro.writable = false;
    for (std::uint64_t i = 0; i < pages; ++i) {
        WalkResult w = src.pageTable().walk(src_vpn + i);
        if (!w.pte)
            fatal("COW share of unmapped page");
        Pte pte = *w.pte;
        pte.copyOnWrite = true;
        pte.prot = ro;

        // Both sides now map the same frame read-only; the kernel
        // pays a PTE change per page to downgrade the source.
        sim.pteChange(src, src_vpn + i, ro);
        src.pageTable().update(src_vpn + i, pte);
        dst.pageTable().map(dst_vpn + i, pte);
        cowRefs[pte.pfn] += 2;
    }
}

void
VmManager::protect(AddressSpace &space, Vpn vpn, std::uint64_t pages,
                   PageProt prot)
{
    for (std::uint64_t i = 0; i < pages; ++i)
        sim.pteChange(space, vpn + i, prot);
}

void
VmManager::setUserHandler(AddressSpace &space, UserFaultHandler handler)
{
    handlers[&space] = std::move(handler);
}

FaultResult
VmManager::access(AddressSpace &space, Vpn vpn, bool write)
{
    WalkResult w = space.pageTable().walk(vpn);
    if (!w.pte) {
        sim.trap();
        return FaultResult::NotMapped;
    }
    const Pte &pte = *w.pte;
    bool allowed = write ? pte.prot.writable : pte.prot.readable;
    if (allowed)
        return FaultResult::Resolved;
    return handleFault(space, vpn, write, pte);
}

FaultResult
VmManager::handleFault(AddressSpace &space, Vpn vpn, bool write,
                       const Pte &pte)
{
    // Every fault enters the kernel through the trap machinery.
    sim.trap();
    sim.mutableStats().inc(kstat::otherExceptions);

    if (write && pte.copyOnWrite) {
        // Break the share: copy the page, remap writable.
        auto it = cowRefs.find(pte.pfn);
        Pte fresh = pte;
        fresh.copyOnWrite = false;
        fresh.prot.writable = true;
        if (it != cowRefs.end() && it->second > 1) {
            fresh.pfn = allocFrame();
            sim.chargeCycles(copyCycles(sim.machine(), pageBytes));
            if (--it->second == 1)
                it->second = 1; // last sharer keeps the original
        } else {
            cowRefs.erase(pte.pfn);
        }
        space.pageTable().update(vpn, fresh);
        sim.pteChange(space, vpn, fresh.prot);
        sim.mutableStats().inc("cow_breaks");
        return FaultResult::CopiedOnWrite;
    }

    auto h = handlers.find(&space);
    if (h != handlers.end()) {
        // Reflect to user level: out of the kernel into the handler
        // and back in to resume — two boundary crossings (s3).
        sim.syscall();
        bool resolved = h->second(space, vpn, write);
        sim.syscall();
        sim.mutableStats().inc("reflected_faults");
        return resolved ? FaultResult::ReflectedToUser
                        : FaultResult::ProtectionError;
    }

    return FaultResult::ProtectionError;
}

std::uint64_t
VmManager::cowSharedFrames() const
{
    std::uint64_t n = 0;
    for (const auto &kv : cowRefs)
        if (kv.second > 1)
            ++n;
    return n;
}

} // namespace aosd
