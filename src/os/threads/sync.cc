#include "os/threads/sync.hh"

#include "cpu/exec_model.hh"
#include "cpu/primitive_costs.hh"

namespace aosd
{

LockImpl
naturalLockImpl(const MachineDesc &machine)
{
    return machine.hasAtomicOp ? LockImpl::AtomicInstruction
                               : LockImpl::KernelTrap;
}

Cycles
lockPairCycles(const MachineDesc &machine, LockImpl impl)
{
    ExecModel exec(machine);
    switch (impl) {
      case LockImpl::AtomicInstruction: {
        if (!machine.hasAtomicOp)
            return 0; // not available: caller must pick another path
        InstrStream s;
        s.atomicOp(1).branch(1).alu(2); // acquire: t&s + test
        s.store(1).alu(1);              // release: clear
        return exec.runStream(s).cycles;
      }
      case LockImpl::KernelTrap: {
        // Trap in, run a short interrupt-disabled critical section,
        // return — twice (acquire and release each cross the kernel).
        const PrimitiveCostDb &db = sharedCostDb();
        InstrStream body;
        body.alu(14).load(2).store(2).branch(2);
        Cycles body_cycles = exec.runStream(body).cycles;
        return 2 * (db.cycles(machine.id, Primitive::NullSyscall) +
                    body_cycles);
      }
      case LockImpl::LamportSoftware: {
        // Lamport's fast path: two writes + two reads of x/y plus
        // fences of plain accesses — "overheads on the order of
        // dozens of cycles" (s5).
        InstrStream s;
        s.store(2).load(2).branch(3).alu(8);  // entry protocol
        s.load(2).store(2).branch(2).alu(6);  // exit protocol
        s.load(4).alu(6);                     // delay/recheck
        return exec.runStream(s).cycles;
      }
    }
    return 0;
}

} // namespace aosd
