#include "os/threads/thread_package.hh"

#include "sim/logging.hh"
#include "sim/profile/profile.hh"

namespace aosd
{

ThreadPackage::ThreadPackage(const MachineDesc &machine,
                             ThreadLevel level, ThreadCostOptions opts)
    : desc(machine), threadLevel(level),
      costModel(computeThreadCosts(machine, opts)),
      lockImpl(naturalLockImpl(machine)),
      lockCost(lockPairCycles(machine, lockImpl))
{}

ThreadPackage::ThreadId
ThreadPackage::create(std::vector<WorkSlice> slices)
{
    Thread t;
    t.id = static_cast<ThreadId>(threads.size());
    t.slices = std::move(slices);
    threads.push_back(std::move(t));
    runQueue.push_back(threads.back().id);

    counters.inc("creates");
    Cycles c = threadLevel == ThreadLevel::User
                   ? costModel.userThreadCreate
                   : costModel.kernelThreadCreate;
    cycleCount += c;
    Profiler::instance().addLeafCycles("thread_create", c);
    return threads.back().id;
}

void
ThreadPackage::chargeSwitch()
{
    counters.inc("switches");
    Cycles c = threadLevel == ThreadLevel::User
                   ? costModel.userThreadSwitch
                   : costModel.kernelThreadSwitch;
    cycleCount += c;
    Profiler::instance().addLeafCycles("thread_switch", c);
}

void
ThreadPackage::runToCompletion()
{
    ProfScope prof("threads");
    while (!runQueue.empty()) {
        ThreadId id = runQueue.front();
        runQueue.pop_front();
        Thread &t = threads[id];
        if (t.done())
            continue;

        if (lastRun != id && lastRun != UINT32_MAX)
            chargeSwitch();
        lastRun = id;

        // A lock held across the previous yield is dropped now.
        if (t.heldLock >= 0) {
            locks[static_cast<std::size_t>(t.heldLock)].release(id);
            t.heldLock = -1;
        }

        WorkSlice &slice = t.slices[t.next];
        if (slice.lockId >= 0) {
            auto idx = static_cast<std::size_t>(slice.lockId);
            if (idx >= locks.size())
                panic("slice references lock %d but only %zu exist",
                      slice.lockId, locks.size());
            if (!locks[idx].tryAcquire(id)) {
                // Contended: charge the failed probe and retry after
                // the holder has run.
                counters.inc("lock_contended");
                cycleCount += lockCost / 2;
                Profiler::instance().addLeafCycles("lock_contended",
                                                   lockCost / 2);
                runQueue.push_back(id);
                continue;
            }
            counters.inc("lock_acquires");
            cycleCount += lockCost;
            Profiler::instance().addLeafCycles("lock_acquire",
                                               lockCost);
        }

        cycleCount += slice.work;
        Profiler::instance().addLeafCycles("thread_work", slice.work);
        counters.inc("slices");
        if (slice.lockId >= 0) {
            if (slice.holdAcrossYield && t.next + 1 < t.slices.size())
                t.heldLock = slice.lockId;
            else
                locks[static_cast<std::size_t>(slice.lockId)]
                    .release(id);
        }
        ++t.next;
        if (!t.done())
            runQueue.push_back(id);
    }
}

bool
ThreadPackage::allDone() const
{
    for (const auto &t : threads)
        if (!t.done())
            return false;
    return true;
}

double
ThreadPackage::elapsedMicros() const
{
    return desc.clock.cyclesToMicros(cycleCount);
}

} // namespace aosd
