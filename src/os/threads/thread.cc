#include "os/threads/thread.hh"

#include "cpu/exec_model.hh"
#include "cpu/handlers.hh"
#include "cpu/primitive_costs.hh"

namespace aosd
{

std::uint32_t
threadStateWords(const MachineDesc &machine, bool fp_in_use)
{
    std::uint32_t words = machine.intRegs + machine.miscStateWords;
    if (fp_in_use)
        words += machine.fpStateWords;
    return words;
}

namespace
{

/** Execute a small stream on a fresh execution model. */
Cycles
cost(const MachineDesc &m, const InstrStream &s)
{
    ExecModel exec(m);
    return exec.runStream(s).cycles;
}

Cycles
procCallCycles(const MachineDesc &m)
{
    InstrStream s;
    if (m.microcoded) {
        // CALLS/RET microcode plus argument pushes.
        s.microcoded(45).microcoded(40).microcoded(4, 2);
        return cost(m, s);
    }
    if (m.regWindows.windows > 0) {
        // save/restore slide the window: no memory traffic until the
        // window set overflows (the SPARC design point, s4.1). Deep
        // call chains overflow occasionally; amortize one spill per
        // 8 calls.
        s.branch(2).alu(10);
        s.hwDelay(14); // ~spill cost / 8
        return cost(m, s);
    }
    // Flat RISC: jal, small prologue/epilogue spill, return.
    s.branch(2).store(2).alu(4).load(2);
    return cost(m, s);
}

Cycles
userSwitchCycles(const MachineDesc &m, const ThreadCostOptions &opts)
{
    const PrimitiveCostDb &db = sharedCostDb();

    if (m.regWindows.windows > 0) {
        // SPARC: the current-window pointer is privileged, so a purely
        // user-level switch is impossible (s4.1): trap into the kernel,
        // then spill/fill the active windows plus globals.
        Cycles trap = db.cycles(m.id, Primitive::NullSyscall);
        InstrStream windows;
        int pairs = static_cast<int>(
            m.regWindows.avgSaveRestorePerSwitch + 0.5);
        for (int i = 0; i < pairs; ++i)
            windows.append(sparcWindowSaveSeq(m));
        for (int i = 0; i < pairs; ++i)
            windows.append(sparcWindowRestoreSeq(m));
        InstrStream globals;
        std::uint32_t g = 8 + m.miscStateWords +
                          (opts.fpInUse ? m.fpStateWords : 0);
        globals.store(g).load(g).alu(12).branch(4);
        return trap + cost(m, windows) + cost(m, globals);
    }

    std::uint32_t words = threadStateWords(m, opts.fpInUse);
    if (opts.saveActiveOnly)
        words = words / 2;
    InstrStream s;
    if (m.microcoded) {
        // Save/restore through MOVQ-style microcode: ~3 cycles/word
        // each way, plus dispatch.
        s.microcoded(3, words * 2).microcoded(20);
        return cost(m, s);
    }
    s.alu(8);
    s.store(words);
    s.alu(6);
    s.load(words);
    s.branch(4);
    if (m.pipeline.exposed) {
        // Involuntary switches must also juggle visible pipeline state.
        s.ctrlRead(m.pipeline.stateRegs / 3);
        s.ctrlWrite(m.pipeline.stateRegs / 3);
    }
    return cost(m, s);
}

} // namespace

ThreadCosts
computeThreadCosts(const MachineDesc &machine, ThreadCostOptions opts)
{
    const PrimitiveCostDb &db = sharedCostDb();
    ThreadCosts c;
    c.procedureCall = procCallCycles(machine);
    c.userThreadSwitch = userSwitchCycles(machine, opts);

    // User-level creation: allocate/initialize a TCB and stack frame —
    // "5-10 times the cost of a procedure call" [Anderson et al. 89].
    {
        InstrStream s;
        if (machine.microcoded) {
            s.microcoded(4, 12).microcoded(45).microcoded(40);
        } else {
            s.alu(24).store(16).branch(4);
        }
        ExecModel exec(machine);
        c.userThreadCreate = exec.runStream(s).cycles;
    }

    // Kernel-level operations pay the Table 1 primitives.
    c.kernelThreadSwitch =
        db.cycles(machine.id, Primitive::ContextSwitch);
    c.kernelThreadCreate =
        db.cycles(machine.id, Primitive::NullSyscall) * 2 + 600;
    return c;
}

} // namespace aosd
