#include "os/threads/activations.hh"

#include <deque>
#include <queue>
#include <vector>

#include "cpu/primitive_costs.hh"
#include "os/threads/thread.hh"
#include "sim/logging.hh"

namespace aosd
{

namespace
{

struct SimThread
{
    std::uint32_t slicesLeft = 0;
    std::uint32_t sliceInRun = 0; // slices since last I/O
};

} // namespace

ActivationsResult
runIoWorkload(const MachineDesc &machine, ThreadModel model,
              const IoWorkload &w)
{
    const PrimitiveCostDb &db = sharedCostDb();
    ThreadCosts costs = computeThreadCosts(machine);
    const Clock &clk = machine.clock;

    // Per-event costs by model.
    Cycles switch_cost = 0;
    Cycles block_cost = 0;   // entering the kernel to start the I/O
    Cycles upcall_cost = 0;  // kernel->user scheduler notification
    switch (model) {
      case ThreadModel::KernelThreads:
        switch_cost = db.cycles(machine.id, Primitive::ContextSwitch);
        block_cost = db.cycles(machine.id, Primitive::NullSyscall);
        break;
      case ThreadModel::UserThreadsBlocking:
        switch_cost = costs.userThreadSwitch;
        block_cost = db.cycles(machine.id, Primitive::NullSyscall);
        break;
      case ThreadModel::SchedulerActivations:
        switch_cost = costs.userThreadSwitch;
        block_cost = db.cycles(machine.id, Primitive::NullSyscall);
        // An upcall is a trap out plus a crossing back (s4 / [Anderson
        // et al. 90]); two per I/O (block notification + unblock).
        upcall_cost = db.cycles(machine.id, Primitive::Trap) +
                      db.cycles(machine.id, Primitive::NullSyscall);
        break;
    }

    std::vector<SimThread> threads(w.threads);
    for (auto &t : threads)
        t.slicesLeft = w.slicesPerThread;

    std::deque<std::uint32_t> ready;
    for (std::uint32_t i = 0; i < w.threads; ++i)
        ready.push_back(i);

    // Min-heap of (completion_us, thread) for outstanding I/O.
    using IoEntry = std::pair<double, std::uint32_t>;
    std::priority_queue<IoEntry, std::vector<IoEntry>,
                        std::greater<IoEntry>>
        io;

    ActivationsResult r;
    double now_us = 0;
    double idle_us = 0;
    std::uint32_t running = UINT32_MAX;

    auto drain_io = [&](bool wait_if_empty_ready) {
        // Move completed I/Os to the ready queue; optionally advance
        // time to the next completion when nothing is runnable.
        while (true) {
            while (!io.empty() && io.top().first <= now_us) {
                std::uint32_t t = io.top().second;
                io.pop();
                if (model == ThreadModel::SchedulerActivations) {
                    now_us += clk.cyclesToMicros(upcall_cost);
                    ++r.upcalls;
                }
                ready.push_back(t);
            }
            if (!ready.empty() || io.empty() || !wait_if_empty_ready)
                return;
            double next = io.top().first;
            idle_us += next - now_us;
            now_us = next;
        }
    };

    while (true) {
        drain_io(/*wait_if_empty_ready=*/true);
        if (ready.empty() && io.empty())
            break; // all done
        if (ready.empty())
            continue;

        std::uint32_t tid = ready.front();
        ready.pop_front();
        if (running != tid && running != UINT32_MAX) {
            now_us += clk.cyclesToMicros(switch_cost);
            ++r.switches;
        }
        running = tid;

        SimThread &t = threads[tid];
        now_us += clk.cyclesToMicros(w.sliceCycles);
        --t.slicesLeft;
        ++t.sliceInRun;

        bool does_io = t.slicesLeft > 0 &&
                       t.sliceInRun >= w.ioEveryNSlices;
        if (does_io) {
            t.sliceInRun = 0;
            ++r.ioOps;
            now_us += clk.cyclesToMicros(block_cost);
            if (model == ThreadModel::UserThreadsBlocking) {
                // The kernel blocks the only kernel thread: the whole
                // processor waits out the I/O (s4's functionality gap).
                idle_us += w.ioLatencyUs;
                now_us += w.ioLatencyUs;
                ready.push_back(tid);
            } else {
                if (model == ThreadModel::SchedulerActivations) {
                    // Block notification upcall lets the user
                    // scheduler pick another thread.
                    now_us += clk.cyclesToMicros(upcall_cost);
                    ++r.upcalls;
                }
                io.emplace(now_us + w.ioLatencyUs, tid);
            }
        } else if (t.slicesLeft > 0) {
            ready.push_back(tid);
        }
    }

    r.elapsedUs = now_us;
    r.idleFraction = now_us > 0 ? idle_us / now_us : 0.0;
    return r;
}

} // namespace aosd
