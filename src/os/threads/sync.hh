/**
 * @file
 * Synchronization cost models (§4.1, §5).
 *
 * The MIPS R2000/R3000 has no interlocked instruction, so user-level
 * critical sections either trap into the kernel (expensive — parthenon
 * spends ~1/5 of its time there) or run a Lamport-style software mutex
 * (still dozens of cycles). Machines with test&set pay a bus-locked
 * access. All three paths are priced here, and a functional lock is
 * provided for the thread package and the DSM layer.
 */

#ifndef AOSD_OS_THREADS_SYNC_HH
#define AOSD_OS_THREADS_SYNC_HH

#include <cstdint>

#include "arch/machine_desc.hh"
#include "sim/ticks.hh"

namespace aosd
{

/** How mutual exclusion is implemented. */
enum class LockImpl
{
    AtomicInstruction, ///< ldstub / xmem / BBSSI
    KernelTrap,        ///< trap in, disable interrupts, test, set
    LamportSoftware,   ///< [Lamport 87] fast mutual exclusion
};

constexpr const char *
lockImplName(LockImpl impl)
{
    switch (impl) {
      case LockImpl::AtomicInstruction: return "atomic instruction";
      case LockImpl::KernelTrap: return "kernel trap";
      case LockImpl::LamportSoftware: return "Lamport software";
    }
    return "?";
}

/** The implementation a user-level thread package must use on this
 *  machine (atomic if the ISA has one, else a kernel trap). */
LockImpl naturalLockImpl(const MachineDesc &machine);

/** Cycles for one uncontended acquire+release pair. */
Cycles lockPairCycles(const MachineDesc &machine, LockImpl impl);

/**
 * Functional test&set lock used by the thread package and DSM tests.
 * Tracks acquisition counts so invariants can be asserted.
 */
class TestAndSetLock
{
  public:
    /** @return true if the lock was acquired. */
    bool
    tryAcquire(std::uint32_t owner)
    {
        if (held)
            return false;
        held = true;
        holder = owner;
        ++acquisitions;
        return true;
    }

    void
    release(std::uint32_t owner)
    {
        if (held && holder == owner)
            held = false;
    }

    bool isHeld() const { return held; }
    std::uint32_t currentHolder() const { return holder; }
    std::uint64_t acquireCount() const { return acquisitions; }

  private:
    bool held = false;
    std::uint32_t holder = 0;
    std::uint64_t acquisitions = 0;
};

} // namespace aosd

#endif // AOSD_OS_THREADS_SYNC_HH
