#include "os/threads/multiprocessor.hh"

#include <algorithm>
#include <deque>

#include "os/threads/sync.hh"
#include "sim/logging.hh"

namespace aosd
{

MpThreadRunner::MpThreadRunner(const MachineDesc &machine,
                               ThreadLevel thread_level,
                               std::uint32_t processors,
                               ThreadCostOptions opts)
    : desc(machine), level(thread_level),
      nProcs(std::max<std::uint32_t>(processors, 1)),
      costs(computeThreadCosts(machine, opts)),
      lockCost(lockPairCycles(machine, naturalLockImpl(machine)))
{}

void
MpThreadRunner::addThread(std::vector<WorkSlice> slices)
{
    Thread t;
    t.slices = std::move(slices);
    threads.push_back(std::move(t));
}

MpRunResult
MpThreadRunner::run()
{
    MpRunResult result;
    lockWaitMicros = 0;

    // Time-ordered execution: on every step, the eligible processor
    // with the lowest clock runs ONE slice of its current thread (or
    // dispatches a new one from the shared FIFO). Processor affinity
    // plus a scheduling quantum keeps switch charges realistic while
    // global time-ordering makes lock serialization honest.
    struct Proc
    {
        Cycles clock = 0;
        std::uint32_t tid = UINT32_MAX;
        std::uint32_t ran = 0;
        std::uint32_t lastTid = UINT32_MAX;
    };
    std::vector<Proc> procs(nProcs);
    std::deque<std::uint32_t> ready;
    for (std::uint32_t i = 0; i < threads.size(); ++i)
        ready.push_back(i);

    Cycles switch_cost = level == ThreadLevel::User
                             ? costs.userThreadSwitch
                             : costs.kernelThreadSwitch;

    std::uint64_t stall_guard = 0;
    while (true) {
        if (++stall_guard > 100 * 1000 * 1000)
            panic("multiprocessor run does not converge");

        // Pick the lowest-clock processor that can make progress.
        Proc *p = nullptr;
        for (auto &cand : procs) {
            bool eligible = cand.tid != UINT32_MAX || !ready.empty();
            if (eligible && (!p || cand.clock < p->clock))
                p = &cand;
        }
        if (!p)
            break; // nothing running, nothing ready: done

        if (p->tid == UINT32_MAX) {
            p->tid = ready.front();
            ready.pop_front();
            p->ran = 0;
            if (threads[p->tid].done()) {
                p->tid = UINT32_MAX;
                continue;
            }
            if (p->lastTid != p->tid && p->lastTid != UINT32_MAX) {
                p->clock += switch_cost;
                ++result.switches;
            }
            p->lastTid = p->tid;
        }

        Thread &t = threads[p->tid];

        // Release a lock held across the previous yield; its critical
        // section ends now, at this processor's time.
        if (t.heldLock >= 0) {
            TemporalLock &h =
                locks[static_cast<std::size_t>(t.heldLock)];
            h.held = false;
            h.freeAt = std::max(h.freeAt, p->clock);
            t.heldLock = -1;
        }

        WorkSlice &slice = t.slices[t.next];
        bool ran_slice = true;
        if (slice.lockId >= 0) {
            auto idx = static_cast<std::size_t>(slice.lockId);
            if (idx >= locks.size())
                panic("slice references lock %d but only %zu exist",
                      slice.lockId, locks.size());
            TemporalLock &l = locks[idx];
            if (l.held && l.owner != p->tid) {
                // Owner parked across a yield: spin briefly, then
                // reschedule this thread.
                p->clock += lockCost / 2;
                ++result.lockRetries;
                ready.push_back(p->tid);
                p->tid = UINT32_MAX;
                ran_slice = false;
            } else {
                if (p->clock < l.freeAt) {
                    // Serialize behind the previous critical section.
                    lockWaitMicros += desc.clock.cyclesToMicros(
                        l.freeAt - p->clock);
                    p->clock = l.freeAt;
                    ++result.lockRetries;
                }
                p->clock += lockCost;
                ++result.lockAcquires;
                l.owner = p->tid;
                l.freeAt = p->clock + slice.work;
                l.held = slice.holdAcrossYield &&
                         t.next + 1 < t.slices.size();
            }
        }

        if (!ran_slice)
            continue;

        p->clock += slice.work;
        if (slice.lockId >= 0 && slice.holdAcrossYield &&
            t.next + 1 < t.slices.size())
            t.heldLock = slice.lockId;
        ++t.next;
        ++p->ran;

        if (t.done()) {
            p->tid = UINT32_MAX;
        } else if (p->ran >= quantum) {
            ready.push_back(p->tid);
            p->tid = UINT32_MAX;
        }
    }

    Cycles busiest = 0, total = 0;
    for (const Proc &p : procs) {
        busiest = std::max(busiest, p.clock);
        total += p.clock;
    }
    result.elapsedUs = desc.clock.cyclesToMicros(busiest);
    result.totalCpuUs = desc.clock.cyclesToMicros(total);
    return result;
}

} // namespace aosd
