/**
 * @file
 * Multiprocessor thread execution (§4).
 *
 * The paper's thread discussion is ultimately about shared-memory
 * multiprocessors (parthenon on a uniprocessor still gained 10% from
 * threads; Synapse ran on a Sequent). This model runs a thread
 * workload over P simulated processors with a shared run queue and
 * real lock contention: a processor that loses a lock race spins and
 * retries, paying the machine's lock-pair cost each probe. Speedup
 * curves per machine show how synchronization cost (atomic vs
 * kernel-trap on the MIPS) and thread-switch cost bound scaling.
 */

#ifndef AOSD_OS_THREADS_MULTIPROCESSOR_HH
#define AOSD_OS_THREADS_MULTIPROCESSOR_HH

#include <cstdint>
#include <vector>

#include "arch/machine_desc.hh"
#include "os/threads/thread_package.hh"

namespace aosd
{

/** Result of a multiprocessor run. */
struct MpRunResult
{
    /** Wall time: the busiest processor's clock, microseconds. */
    double elapsedUs = 0;
    /** Sum of processor busy time (for efficiency computations). */
    double totalCpuUs = 0;
    std::uint64_t lockAcquires = 0;
    std::uint64_t lockRetries = 0;
    std::uint64_t switches = 0;

    /** Parallel efficiency vs a given serial time. */
    double
    speedupOver(double serial_us) const
    {
        return elapsedUs > 0 ? serial_us / elapsedUs : 0.0;
    }
};

/** Shared-run-queue multiprocessor executor for WorkSlice threads. */
class MpThreadRunner
{
  public:
    MpThreadRunner(const MachineDesc &machine, ThreadLevel level,
                   std::uint32_t processors,
                   ThreadCostOptions opts = {});

    /** Consecutive slices a dispatched thread may run before the
     *  processor reschedules (default 10). */
    void setQuantum(std::uint32_t slices) { quantum = slices; }

    /** Add a thread (same WorkSlice format as ThreadPackage). */
    void addThread(std::vector<WorkSlice> slices);

    void setLockCount(std::size_t n) { locks.assign(n, {}); }

    /** Total time the run spent waiting on busy locks, microseconds
     *  (filled in by run()). */
    double lockWaitUs() const { return lockWaitMicros; }

    /** Execute everything; returns the run result. */
    MpRunResult run();

    std::uint32_t processors() const { return nProcs; }

  private:
    struct Thread
    {
        std::vector<WorkSlice> slices;
        std::size_t next = 0;
        int heldLock = -1;
        bool done() const { return next >= slices.size(); }
    };

    /**
     * A lock with temporal semantics: `held` while the owner has it
     * across a yield (release time unknown); otherwise `freeAt` is
     * the simulated time its last critical section ended, and a
     * processor acquiring earlier must spin until then.
     */
    struct TemporalLock
    {
        bool held = false;
        std::uint32_t owner = 0;
        Cycles freeAt = 0;
    };

    MachineDesc desc;
    ThreadLevel level;
    std::uint32_t nProcs;
    std::uint32_t quantum = 10;
    ThreadCosts costs;
    Cycles lockCost = 0;
    std::vector<Thread> threads;
    std::vector<TemporalLock> locks;
    double lockWaitMicros = 0;
};

} // namespace aosd

#endif // AOSD_OS_THREADS_MULTIPROCESSOR_HH
