/**
 * @file
 * A functional thread package with cost accounting (§4).
 *
 * Threads are sequences of work slices, optionally guarded by locks;
 * the package runs them round-robin, charging the machine's simulated
 * thread-operation costs (user-level or kernel-level) for every create,
 * switch and lock operation. The same workload can therefore be run at
 * both levels on every machine, which is exactly the comparison §4
 * makes: fine-grained parallelism is only as cheap as the architecture
 * lets thread operations be.
 */

#ifndef AOSD_OS_THREADS_THREAD_PACKAGE_HH
#define AOSD_OS_THREADS_THREAD_PACKAGE_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "arch/machine_desc.hh"
#include "os/threads/sync.hh"
#include "os/threads/thread.hh"
#include "sim/stats.hh"

namespace aosd
{

/** Where thread management lives. */
enum class ThreadLevel
{
    User,   ///< run-time package, invisible to the kernel
    Kernel, ///< every operation crosses the kernel boundary
};

/** One schedulable unit of work. */
struct WorkSlice
{
    /** Computation cycles this slice performs. */
    Cycles work = 0;
    /** Lock to hold while performing it (-1 = none). */
    int lockId = -1;
    /** Keep the lock across the following yield; it is released when
     *  this thread is next scheduled (lets contention actually occur
     *  under round-robin scheduling). */
    bool holdAcrossYield = false;
};

/** Round-robin thread system for one machine. */
class ThreadPackage
{
  public:
    using ThreadId = std::uint32_t;

    ThreadPackage(const MachineDesc &machine, ThreadLevel level,
                  ThreadCostOptions opts = {});

    /** Create a thread that will execute `slices` in order. */
    ThreadId create(std::vector<WorkSlice> slices);

    /** Number of locks available to slices. */
    void setLockCount(std::size_t n) { locks.assign(n, {}); }

    /** Run until every thread finishes. */
    void runToCompletion();

    /** True once all created threads have finished. */
    bool allDone() const;

    Cycles elapsedCycles() const { return cycleCount; }
    double elapsedMicros() const;

    const StatGroup &stats() const { return counters; }
    const ThreadCosts &costs() const { return costModel; }
    ThreadLevel level() const { return threadLevel; }

  private:
    struct Thread
    {
        ThreadId id = 0;
        std::vector<WorkSlice> slices;
        std::size_t next = 0;
        int heldLock = -1;
        bool done() const { return next >= slices.size(); }
    };

    void chargeSwitch();

    MachineDesc desc;
    ThreadLevel threadLevel;
    ThreadCosts costModel;
    LockImpl lockImpl;
    Cycles lockCost = 0;

    std::vector<Thread> threads;
    std::deque<ThreadId> runQueue;
    std::vector<TestAndSetLock> locks;
    ThreadId lastRun = UINT32_MAX;
    Cycles cycleCount = 0;
    StatGroup counters{"threads"};
};

} // namespace aosd

#endif // AOSD_OS_THREADS_THREAD_PACKAGE_HH
