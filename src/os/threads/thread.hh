/**
 * @file
 * Thread state and per-architecture thread operation costs (§4).
 *
 * Table 6 gives the processor state a thread carries on each machine;
 * §4.1 argues that this state — register windows above all — is what
 * makes fine-grained threads expensive on the newer architectures.
 * computeThreadCosts() prices procedure calls, user-level thread
 * switches (including the SPARC's forced kernel trap to move the
 * privileged current-window pointer), creates, and kernel-level
 * operations from the same execution model as Tables 1/2.
 */

#ifndef AOSD_OS_THREADS_THREAD_HH
#define AOSD_OS_THREADS_THREAD_HH

#include <cstdint>

#include "arch/machine_desc.hh"
#include "sim/ticks.hh"

namespace aosd
{

/** Options for the thread cost model. */
struct ThreadCostOptions
{
    /** The application uses floating point (its state must be saved;
     *  Table 1's measurements assume it does not). */
    bool fpInUse = false;
    /** Save only registers in active use [Wall 86] — the optimization
     *  §4.1 says "may become crucial". Halves the flat register
     *  traffic; does not help register windows. */
    bool saveActiveOnly = false;
};

/** Cycle costs of thread-level operations on one machine. */
struct ThreadCosts
{
    Cycles procedureCall = 0;
    Cycles userThreadSwitch = 0;
    Cycles userThreadCreate = 0;
    Cycles kernelThreadSwitch = 0;
    Cycles kernelThreadCreate = 0;

    /** §4.1's headline ratio for the SPARC (~50). */
    double
    switchToCallRatio() const
    {
        return procedureCall
                   ? static_cast<double>(userThreadSwitch) /
                         static_cast<double>(procedureCall)
                   : 0.0;
    }
};

/** Words of processor state a thread must save (Table 6 row sum,
 *  optionally without FP state). */
std::uint32_t threadStateWords(const MachineDesc &machine,
                               bool fp_in_use);

/** Price thread operations on `machine`. */
ThreadCosts computeThreadCosts(const MachineDesc &machine,
                               ThreadCostOptions opts = {});

} // namespace aosd

#endif // AOSD_OS_THREADS_THREAD_HH
