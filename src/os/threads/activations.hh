/**
 * @file
 * Scheduler activations (§4, [Anderson et al. 90]).
 *
 * The paper argues user-level threads beat kernel threads on cost but
 * lose functionality when a thread blocks in the kernel: without
 * kernel cooperation the whole processor stalls. Scheduler activations
 * fix this with kernel->user upcalls on blocking events, "provid[ing]
 * all of the function of kernel-level threads without sacrificing
 * performance". This module simulates an I/O-mixed multithreaded
 * workload under three regimes — kernel threads, naive user threads,
 * and activations — with every switch/upcall priced by the machine's
 * simulated primitives.
 */

#ifndef AOSD_OS_THREADS_ACTIVATIONS_HH
#define AOSD_OS_THREADS_ACTIVATIONS_HH

#include <cstdint>

#include "arch/machine_desc.hh"
#include "sim/ticks.hh"

namespace aosd
{

/** How threads and blocking events are managed. */
enum class ThreadModel
{
    KernelThreads,       ///< every op crosses the kernel; I/O overlaps
    UserThreadsBlocking, ///< cheap ops; a blocking call stalls the CPU
    SchedulerActivations,///< cheap ops + kernel upcalls on block/unblock
};

constexpr const char *
threadModelName(ThreadModel m)
{
    switch (m) {
      case ThreadModel::KernelThreads: return "kernel threads";
      case ThreadModel::UserThreadsBlocking:
        return "user threads (naive)";
      case ThreadModel::SchedulerActivations:
        return "scheduler activations";
    }
    return "?";
}

/** Workload shape: compute slices interleaved with blocking I/O. */
struct IoWorkload
{
    std::uint32_t threads = 8;
    std::uint32_t slicesPerThread = 50;
    Cycles sliceCycles = 2000;
    /** Every Nth slice ends in a blocking I/O. */
    std::uint32_t ioEveryNSlices = 5;
    double ioLatencyUs = 300.0; // disk-ish
};

/** Outcome of one run. */
struct ActivationsResult
{
    double elapsedUs = 0;
    std::uint64_t switches = 0;
    std::uint64_t upcalls = 0;
    std::uint64_t ioOps = 0;
    /** Fraction of wall time the CPU sat idle waiting on I/O. */
    double idleFraction = 0;
};

/** Run the workload on one machine under one model (uniprocessor). */
ActivationsResult runIoWorkload(const MachineDesc &machine,
                                ThreadModel model,
                                const IoWorkload &workload = {});

} // namespace aosd

#endif // AOSD_OS_THREADS_ACTIVATIONS_HH
