#include "os/kernel/scheduler.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace aosd
{

Scheduler::ThreadId
Scheduler::spawn(const std::string &name, AddressSpace &space,
                 ThreadBody body, int priority)
{
    Thread t;
    t.id = static_cast<ThreadId>(threads.size());
    t.name = name;
    t.space = &space;
    t.body = std::move(body);
    t.priority = priority;
    threads.push_back(std::move(t));
    readyQueue.push_back(threads.back().id);
    counters.inc("spawned");
    return threads.back().id;
}

void
Scheduler::wake(ThreadId id)
{
    if (id >= threads.size())
        panic("wake of unknown thread %u", id);
    Thread &t = threads[id];
    if (t.state != ThreadRunState::Blocked)
        return;
    t.state = ThreadRunState::Ready;
    readyQueue.push_back(id);
    counters.inc("wakeups");
}

Scheduler::Thread *
Scheduler::pickNext()
{
    // Highest priority among ready threads; FIFO within a priority.
    Thread *best = nullptr;
    std::size_t best_pos = 0;
    for (std::size_t i = 0; i < readyQueue.size(); ++i) {
        Thread &t = threads[readyQueue[i]];
        if (t.state != ThreadRunState::Ready)
            continue;
        if (!best || t.priority > best->priority) {
            best = &t;
            best_pos = i;
        }
    }
    if (best)
        readyQueue.erase(readyQueue.begin() +
                         static_cast<std::ptrdiff_t>(best_pos));
    return best;
}

std::uint64_t
Scheduler::run(std::uint64_t max_dispatches)
{
    std::uint64_t dispatches = 0;
    while (dispatches < max_dispatches) {
        Thread *t = pickNext();
        if (!t)
            break;

        // Crossing into another address space pays the full switch;
        // re-dispatching the same space is a thread switch only.
        if (&sim.currentSpace() != t->space)
            sim.contextSwitchTo(*t->space);
        else if (lastDispatched != t->id &&
                 lastDispatched != UINT32_MAX)
            sim.threadSwitch();
        lastDispatched = t->id;

        t->state = ThreadRunState::Running;
        counters.inc("dispatches");
        ++dispatches;

        ThreadRunState next = t->body();
        t->state = next;
        switch (next) {
          case ThreadRunState::Ready:
            readyQueue.push_back(t->id);
            break;
          case ThreadRunState::Blocked:
            counters.inc("blocks");
            break;
          case ThreadRunState::Finished:
            counters.inc("finished");
            break;
          case ThreadRunState::Running:
            panic("thread body returned Running");
        }
    }
    return dispatches;
}

ThreadRunState
Scheduler::state(ThreadId id) const
{
    if (id >= threads.size())
        panic("state of unknown thread %u", id);
    return threads[id].state;
}

std::size_t
Scheduler::readyCount() const
{
    std::size_t n = 0;
    for (const auto &t : threads)
        n += t.state == ThreadRunState::Ready;
    return n;
}

std::size_t
Scheduler::finishedCount() const
{
    std::size_t n = 0;
    for (const auto &t : threads)
        n += t.state == ThreadRunState::Finished;
    return n;
}

} // namespace aosd
