#include "os/kernel/address_space.hh"

namespace aosd
{

AddressSpace::AddressSpace(std::string name, Asid asid,
                           const MachineDesc &machine)
    : spaceName(std::move(name)), spaceAsid(asid),
      table(makePageTableFor(machine))
{}

void
AddressSpace::mapRange(Vpn vpn, std::uint64_t count, Pfn pfn,
                       PageProt prot)
{
    for (std::uint64_t i = 0; i < count; ++i) {
        Pte pte;
        pte.pfn = pfn + i;
        pte.prot = prot;
        table->map(vpn + i, pte);
    }
}

void
AddressSpace::unmapRange(Vpn vpn, std::uint64_t count)
{
    for (std::uint64_t i = 0; i < count; ++i)
        table->unmap(vpn + i);
}

void
AddressSpace::setWorkingSet(Vpn base, std::uint64_t pages)
{
    wset.clear();
    wset.reserve(pages);
    for (std::uint64_t i = 0; i < pages; ++i)
        wset.push_back(base + i);
}

} // namespace aosd
