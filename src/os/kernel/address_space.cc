#include "os/kernel/address_space.hh"

namespace aosd
{

AddressSpace::AddressSpace(std::string name, Asid asid,
                           const MachineDesc &machine)
    : spaceName(std::move(name)), spaceAsid(asid),
      table(makePageTableFor(machine))
{}

void
AddressSpace::mapRange(Vpn vpn, std::uint64_t count, Pfn pfn,
                       PageProt prot)
{
    walkCache.clear();
    for (std::uint64_t i = 0; i < count; ++i) {
        Pte pte;
        pte.pfn = pfn + i;
        pte.prot = prot;
        table->map(vpn + i, pte);
    }
}

void
AddressSpace::unmapRange(Vpn vpn, std::uint64_t count)
{
    walkCache.clear();
    for (std::uint64_t i = 0; i < count; ++i)
        table->unmap(vpn + i);
}

const Pte *
AddressSpace::translateSlow(Vpn vpn)
{
    // Grow at half full (counting both mapped and unmapped memos) so
    // the inline probe stays short; rehash is a rebuild because
    // clear() leaves no tombstones to worry about.
    std::size_t used = 0;
    for (const CachedWalk &c : walkCache)
        used += c.state != CachedWalk::Empty;
    if (walkCache.empty() || 2 * (used + 1) > walkCache.size()) {
        std::size_t cap =
            walkCache.empty() ? 256 : 2 * walkCache.size();
        std::vector<CachedWalk> bigger(cap);
        std::uint32_t mask = static_cast<std::uint32_t>(cap) - 1;
        for (const CachedWalk &c : walkCache) {
            if (c.state == CachedWalk::Empty)
                continue;
            std::uint32_t i = hashVpn(c.vpn) & mask;
            while (bigger[i].state != CachedWalk::Empty)
                i = (i + 1) & mask;
            bigger[i] = c;
        }
        walkCache.swap(bigger);
    }

    WalkResult w = table->walk(vpn);
    CachedWalk memo;
    memo.vpn = vpn;
    if (w.pte) {
        memo.pte = *w.pte;
        memo.state = CachedWalk::Mapped;
    } else {
        memo.state = CachedWalk::Unmapped;
    }
    std::uint32_t mask =
        static_cast<std::uint32_t>(walkCache.size()) - 1;
    std::uint32_t i = hashVpn(vpn) & mask;
    while (walkCache[i].state != CachedWalk::Empty)
        i = (i + 1) & mask;
    walkCache[i] = memo;
    return memo.state == CachedWalk::Mapped ? &walkCache[i].pte
                                            : nullptr;
}

void
AddressSpace::setWorkingSet(Vpn base, std::uint64_t pages)
{
    wset.clear();
    wset.reserve(pages);
    for (std::uint64_t i = 0; i < pages; ++i)
        wset.push_back(base + i);
}

} // namespace aosd
