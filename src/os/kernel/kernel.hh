/**
 * @file
 * The instrumented simulated kernel.
 *
 * SimKernel plays the role the authors' instrumented Mach kernels play
 * in §5: every primitive operation — system call, trap, address-space
 * context switch, thread switch, TLB miss, emulated instruction — is
 * both *charged* (simulated time advances by the machine's simulated
 * primitive cost) and *counted* (Table 7's columns). Higher layers
 * (IPC, VM, threads, the workload engine) drive the kernel; they never
 * invent costs of their own for these primitives.
 */

#ifndef AOSD_OS_KERNEL_KERNEL_HH
#define AOSD_OS_KERNEL_KERNEL_HH

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "arch/machine_desc.hh"
#include "cpu/primitive_costs.hh"
#include "mem/cache.hh"
#include "mem/tlb.hh"
#include "os/kernel/address_space.hh"
#include "sim/counters/reconcile.hh"
#include "sim/profile/profile.hh"
#include "sim/stats.hh"

namespace aosd
{

/** Counter names SimKernel maintains (Table 7 columns). */
namespace kstat
{
inline constexpr const char *syscalls = "syscalls";
inline constexpr const char *traps = "traps";
inline constexpr const char *addrSpaceSwitches = "addr_space_switches";
inline constexpr const char *threadSwitches = "thread_switches";
inline constexpr const char *emulatedInstrs = "emulated_instrs";
inline constexpr const char *kernelTlbMisses = "kernel_tlb_misses";
inline constexpr const char *userTlbMisses = "user_tlb_misses";
inline constexpr const char *otherExceptions = "other_exceptions";
inline constexpr const char *pteChanges = "pte_changes";
} // namespace kstat

/** Interrupts-disabled test-and-set sequence of the kernel's emulated
 *  test&set fast trap, beyond the trap entry/exit hardware cost. */
inline constexpr Cycles emulatedTasSequenceCycles = 70;

/** Per-emulated-instruction decode-and-interpret cost. */
inline constexpr Cycles emulatedInstrCycles = 4;

/** The per-event prices SimKernel charges on `machine`, for
 *  reconcileKernelWindow() over a workload window. */
KernelWindowCosts kernelWindowCosts(const MachineDesc &machine);

/** One machine's kernel: time accounting + counting + TLB/cache state. */
class SimKernel
{
  public:
    explicit SimKernel(const MachineDesc &machine);

    const MachineDesc &machine() const { return desc; }

    // ---- address spaces -------------------------------------------
    /** Create a new address space (ASIDs recycle modulo the TLB's
     *  pidCount, as on real hardware). */
    AddressSpace &createSpace(const std::string &name);

    AddressSpace &currentSpace();

    /** The kernel's own space (mapped kernel data: page tables etc.). */
    AddressSpace &kernelSpace() { return *spaces.front(); }

    // ---- primitive operations (charge + count) --------------------
    /** Null system call overhead (kernel entry + call prep + C call). */
    void syscall();

    /** A trap/fault/interrupt through the common machinery. */
    void trap();

    /** Change one PTE and keep TLB/virtual cache consistent. */
    void pteChange(AddressSpace &space, Vpn vpn, PageProt prot);

    /** Full address-space context switch, including the hardware costs
     *  of the mapping change and any untagged-TLB/cache purges, plus
     *  the TLB refill of the target's working set. */
    void contextSwitchTo(AddressSpace &target);

    /** Kernel-thread switch within the current space (no mapping
     *  change; counted separately, cf. Table 7 footnote). */
    void threadSwitch();

    /** The kernel emulates `n` instructions on behalf of user code
     *  (e.g. test&set on the MIPS, §4.1/§5). */
    void emulateInstructions(std::uint64_t n);

    /** Fast-path kernel emulation of one interlocked test&set: a
     *  minimal trap that disables interrupts, tests and sets (§4.1:
     *  parthenon spends ~1/5 of its time synchronizing this way). */
    void emulateTestAndSet();

    /** An interrupt or page fault ("other exceptions" in Table 7). */
    void otherException();

    // ---- batched primitive operations -----------------------------
    // Each *Batch(n) charges `n` back-to-back invocations of its
    // per-event counterpart in one closed-form update: cycles and
    // HwCounters as the decoded per-event constants × n, profiler
    // entries/self-cycles/histograms via the sampleN batch updates,
    // sampler boundaries via CounterSampler::tickRun — byte-identical
    // to the per-event loop in every JSON document. Whenever batching
    // cannot apply (--no-batch / AOSD_NO_BATCH / AOSD_DISABLE_BATCH,
    // the reference interpreter mode, the tracer on, or an open
    // span-traced request), they fall back to that per-event loop.
    // `sample_each` reproduces the workload drivers' per-event
    //   CounterSampler::tick(elapsedCycles(), primitiveCycles())
    // after every event.

    void syscallBatch(std::uint64_t n, bool sample_each = false);
    void trapBatch(std::uint64_t n, bool sample_each = false);
    void otherExceptionBatch(std::uint64_t n,
                             bool sample_each = false);
    void threadSwitchBatch(std::uint64_t n, bool sample_each = false);
    void emulateTestAndSetBatch(std::uint64_t n,
                                bool sample_each = false);

    /** n × emulateInstructions(1) — one per-instruction histogram
     *  sample each, *not* emulateInstructions(n), which folds the
     *  whole run into a single attribution event. */
    void emulateSingleInstructionsBatch(std::uint64_t n,
                                        bool sample_each = false);

    /** Batch-charge one pteChange per VPN, then step the per-page
     *  state edits (PTE protection, TLB shootdown, virtual-cache
     *  flush) at the batch boundary. The state ops commute with the
     *  charges, so results equal the per-event loop's exactly. */
    void pteChangeBatch(AddressSpace &space,
                        const std::vector<Vpn> &vpns, PageProt prot);

    /** Batching applies right now: the toggle is on, the pre-decoded
     *  fast path is active, and no per-event observer (tracer, open
     *  span request) is watching. */
    bool batchActive() const;

    // ---- memory references ----------------------------------------
    /**
     * Touch pages in the current space through the TLB, charging
     * refill costs on misses. `kernel_space` selects the slow
     * software-refill path (mapped kernel data) and counts toward
     * kernel TLB misses.
     */
    void touchPages(const std::vector<Vpn> &pages, bool kernel_space);

    /** Touch the current space's working set (after a switch). */
    void touchWorkingSet();

    // ---- direct charging ------------------------------------------
    /** Spend user/kernel computation time without counting anything.
     *  The cycles are attributed to the profiler's current scope. */
    void
    chargeCycles(Cycles c)
    {
        cycleCount += c;
        if (profilerEnabled())
            Profiler::instance().addCycles(c);
    }
    void chargeMicros(double us);

    /** Run user code for `instructions` at ~1 instruction/cycle scaled
     *  by the machine's application performance. */
    void runUserCode(std::uint64_t instructions);

    // ---- results ---------------------------------------------------
    Cycles elapsedCycles() const { return cycleCount; }
    double elapsedMicros() const;
    double elapsedSeconds() const { return elapsedMicros() / 1e6; }

    /** Time spent inside primitive operations only (the §5 "% of time
     *  in OS primitives" numerator). */
    Cycles primitiveCycles() const { return primCycles; }

    const StatGroup &stats() const { return counters; }
    StatGroup &mutableStats() { return counters; }

    Tlb &tlb() { return tlbModel; }
    Cache &cache() { return cacheModel; }

    void resetAccounting();

  private:
    void chargePrimitive(Primitive p);
    /** Closed-form chargePrimitive × n under an outer profiler scope
     *  entered n times (the batch fast path; caller checked
     *  batchActive()). */
    void chargePrimitiveBatch(const char *scope, Primitive p,
                              std::uint64_t n);
    /** Shared body of the scoped batch ops (syscall/trap/exception/
     *  thread switch): stat + counter + charge + optional per-event
     *  sampler boundaries. */
    void batchScopedPrimitive(const char *scope, Primitive p,
                              std::uint64_t *stat, HwCounter event,
                              std::uint64_t n, bool sample_each);
    /** Re-interpret the software refill handler for one TLB miss
     *  (predecode-off reference path); its total equals the modeled
     *  constant the fast path charges, by construction. */
    Cycles interpRefillCost(bool kernel_space);

    MachineDesc desc;
    const PrimitiveCostDb &costs;
    /** cost(desc.id, p) resolved once per primitive at construction:
     *  chargePrimitive runs per kernel event, so no map lookups there. */
    std::array<const PrimitiveCost *, std::size(allPrimitives)>
        primCost{};
    /** Reference execution model for the predecode-off path, which
     *  re-interprets the handler program on every kernel event instead
     *  of charging the cached superblock totals. */
    ExecModel refExec;
    /** The emulated test&set fast-trap sequence (trap entry, the
     *  interrupts-disabled test-and-set microcode, trap return) and
     *  its pre-decoded cycle total. The interpreter fallback re-runs
     *  the stream per event; the fast path charges the constant. */
    InstrStream tasSeq;
    Cycles tasCycles = 0;
    /** Software TLB-refill handler streams (built only when the TLB is
     *  software-managed). Their cycle totals equal the machine's
     *  swUser/swKernelMissCycles by construction, so the interpreter
     *  fallback — which re-runs the stream on every miss — charges
     *  exactly what the fast path's modeled constant charges. */
    InstrStream swRefillUserSeq;
    InstrStream swRefillKernelSeq;
    bool hasSwRefill = false;
    /** The decode-and-dispatch work of emulating one user instruction
     *  in the kernel (emulatedInstrCycles of ALU work). The
     *  interpreter fallback re-runs this stream once per emulated
     *  instruction; the fast path charges n times the constant. */
    InstrStream emulStepSeq;
    Tlb tlbModel;
    Cache cacheModel;
    StatGroup counters{"kernel"};
    /** Interned kstat handles (StatGroup::handle): the workload loop
     *  bumps these once per kernel event, so no string lookups there.
     *  Stable because `counters` is never copied or moved. */
    std::uint64_t *statSyscalls;
    std::uint64_t *statTraps;
    std::uint64_t *statAddrSpaceSwitches;
    std::uint64_t *statThreadSwitches;
    std::uint64_t *statEmulatedInstrs;
    std::uint64_t *statKernelTlbMisses;
    std::uint64_t *statUserTlbMisses;
    std::uint64_t *statOtherExceptions;
    std::uint64_t *statPteChanges;
    std::vector<std::unique_ptr<AddressSpace>> spaces;
    std::size_t currentIdx = 0;
    Asid nextAsid = 1;
    Cycles cycleCount = 0;
    Cycles primCycles = 0;
};

} // namespace aosd

#endif // AOSD_OS_KERNEL_KERNEL_HH
