/**
 * @file
 * Kernel thread scheduler.
 *
 * A small priority + round-robin scheduler over SimKernel address
 * spaces: threads block on events (I/O, message arrival) and are woken
 * by them; every dispatch that crosses an address space pays the
 * machine's context-switch primitive through the kernel. The RPC
 * server example and the kernelized-OS discussions (§2, §5) use it to
 * model "wake the server thread, run it, block again" sequences.
 */

#ifndef AOSD_OS_KERNEL_SCHEDULER_HH
#define AOSD_OS_KERNEL_SCHEDULER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "os/kernel/kernel.hh"

namespace aosd
{

/** Scheduler-visible thread states. */
enum class ThreadRunState
{
    Ready,
    Running,
    Blocked,
    Finished,
};

/**
 * A schedulable kernel thread: a callback invoked each time the
 * thread is dispatched. The callback returns the thread's next state
 * (Blocked to wait for a wakeup, Ready to yield, Finished to exit).
 */
class Scheduler
{
  public:
    using ThreadId = std::uint32_t;
    using ThreadBody = std::function<ThreadRunState()>;

    explicit Scheduler(SimKernel &kernel) : sim(kernel) {}

    /** Create a thread bound to an address space. Higher priority
     *  runs first; equal priorities round-robin. */
    ThreadId spawn(const std::string &name, AddressSpace &space,
                   ThreadBody body, int priority = 0);

    /** Wake a blocked thread (no-op in other states). */
    void wake(ThreadId id);

    /** Dispatch ready threads until none are runnable or the step
     *  limit is hit. Returns the number of dispatches. */
    std::uint64_t run(std::uint64_t max_dispatches = UINT64_MAX);

    ThreadRunState state(ThreadId id) const;
    std::size_t readyCount() const;

    /** Threads that have finished. */
    std::size_t finishedCount() const;

    const StatGroup &stats() const { return counters; }

  private:
    struct Thread
    {
        ThreadId id;
        std::string name;
        AddressSpace *space;
        ThreadBody body;
        int priority;
        ThreadRunState state = ThreadRunState::Ready;
    };

    Thread *pickNext();

    SimKernel &sim;
    std::vector<Thread> threads;
    std::deque<ThreadId> readyQueue;
    ThreadId lastDispatched = UINT32_MAX;
    StatGroup counters{"sched"};
};

} // namespace aosd

#endif // AOSD_OS_KERNEL_SCHEDULER_HH
