#include "os/kernel/kernel.hh"

#include "cpu/exec_model.hh"
#include "sim/counters/counters.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace aosd
{

KernelWindowCosts
kernelWindowCosts(const MachineDesc &machine)
{
    const PrimitiveCostDb &db = sharedCostDb();
    KernelWindowCosts c;
    c.syscallCycles = db.cycles(machine.id, Primitive::NullSyscall);
    c.trapCycles = db.cycles(machine.id, Primitive::Trap);
    c.switchCycles = db.cycles(machine.id, Primitive::ContextSwitch);
    c.pteChangeCycles = db.cycles(machine.id, Primitive::PteChange);
    c.emulInstrCycles = emulatedInstrCycles;
    c.emulTasCycles = machine.timing.trapEnterCycles +
                      machine.timing.trapReturnCycles +
                      emulatedTasSequenceCycles;
    return c;
}

SimKernel::SimKernel(const MachineDesc &machine)
    : desc(machine), costs(sharedCostDb()), tlbModel(machine.tlb),
      cacheModel(machine.cache)
{
    // Space 0 is the kernel itself; its working set models the mapped
    // kernel data (page tables and the like) that still needs TLB
    // entries even when kernel *code* runs unmapped (s5).
    spaces.push_back(
        std::make_unique<AddressSpace>("kernel", 0, desc));
    kernelSpace().setWorkingSet(0x800, 8);
}

AddressSpace &
SimKernel::createSpace(const std::string &name)
{
    Asid asid = nextAsid++;
    if (desc.tlb.processIdTags && desc.tlb.pidCount > 0) {
        // ASIDs wrap on real hardware; recycling one forces a purge of
        // stale translations.
        Asid wrapped = asid % desc.tlb.pidCount;
        if (asid >= desc.tlb.pidCount) {
            tlbModel.invalidateAsid(wrapped);
            countEvent(HwCounter::AsidRollovers);
            asid = wrapped == 0 ? 1 : wrapped;
        }
    }
    spaces.push_back(std::make_unique<AddressSpace>(name, asid, desc));
    return *spaces.back();
}

AddressSpace &
SimKernel::currentSpace()
{
    return *spaces[currentIdx];
}

void
SimKernel::chargePrimitive(Primitive p)
{
    // Attribute the cached handler simulation phase by phase, so a
    // kernel-level profile bottoms out in the same hardware causes
    // (trap_hardware, write_buffer_stall, ...) the exec model charged.
    if (Profiler::instance().enabled()) {
        const ExecResult &detail = costs.cost(desc.id, p).detail;
        for (const PhaseResult &ph : detail.phases) {
            ProfScope scope(phaseSlug(ph.kind));
            profileBreakdown(ph.breakdown);
        }
    }
    Cycles c = costs.cycles(desc.id, p);
    cycleCount += c;
    primCycles += c;
}

void
SimKernel::syscall()
{
    ProfScope prof("syscall");
    counters.inc(kstat::syscalls);
    countEvent(HwCounter::KernelSyscalls);
    Cycles start = cycleCount;
    chargePrimitive(Primitive::NullSyscall);
    Tracer::instance().complete(start, cycleCount - start,
                                TraceEvent::Syscall, "syscall");
}

void
SimKernel::trap()
{
    ProfScope prof("trap");
    counters.inc(kstat::traps);
    countEvent(HwCounter::KernelTraps);
    Cycles start = cycleCount;
    Tracer::instance().recordAt(start, TraceEvent::TrapEnter,
                                TracePhase::Begin, "trap");
    chargePrimitive(Primitive::Trap);
    Tracer::instance().recordAt(cycleCount, TraceEvent::TrapExit,
                                TracePhase::End, "trap");
}

void
SimKernel::pteChange(AddressSpace &space, Vpn vpn, PageProt prot)
{
    ProfScope prof("pte_change");
    counters.inc(kstat::pteChanges);
    countEvent(HwCounter::PteChanges);
    chargePrimitive(Primitive::PteChange);
    space.pageTable().protect(vpn, prot);
    tlbModel.invalidate(vpn, space.asid());
    // Virtually-addressed caches must also drop the page's lines; the
    // simulated primitive already charges the machine's sweep cost
    // (i860: 536 of 559 instructions), so only state changes here.
    if (desc.cache.indexing == CacheIndexing::Virtual)
        cacheModel.flushPage(vpn << pageShift, space.asid());
}

void
SimKernel::contextSwitchTo(AddressSpace &target)
{
    AddressSpace &from = currentSpace();
    if (&target == &from)
        return;
    ProfScope prof("context_switch");
    counters.inc(kstat::addrSpaceSwitches);
    countEvent(HwCounter::ContextSwitches);
    // An address-space switch implies a thread switch (Table 7 note).
    counters.inc(kstat::threadSwitches);
    countEvent(HwCounter::ThreadSwitches);
    Tracer::instance().recordAt(cycleCount, TraceEvent::ContextSwitch,
                                TracePhase::Begin, "context_switch");
    chargePrimitive(Primitive::ContextSwitch);

    Cycles purge = tlbModel.switchContext();
    cycleCount += purge;
    primCycles += purge;
    if (purge) {
        countEvent(HwCounter::TlbPurgeCycles, purge);
        Profiler::instance().addLeafCycles("tlb_purge", purge);
    }

    bool cache_tagged = !desc.cache.flushOnContextSwitch;
    Cycles flush = cacheModel.switchContext(cache_tagged);
    cycleCount += flush;
    primCycles += flush;
    if (flush) {
        countEvent(HwCounter::CacheFlushCycles, flush);
        Profiler::instance().addLeafCycles("cache_flush", flush);
    }

    for (std::size_t i = 0; i < spaces.size(); ++i) {
        if (spaces[i].get() == &target) {
            currentIdx = i;
            touchWorkingSet();
            Tracer::instance().recordAt(cycleCount,
                                        TraceEvent::ContextSwitch,
                                        TracePhase::End,
                                        "context_switch");
            return;
        }
    }
    panic("switch to a space this kernel does not own");
}

void
SimKernel::threadSwitch()
{
    ProfScope prof("thread_switch");
    counters.inc(kstat::threadSwitches);
    countEvent(HwCounter::ThreadSwitches);
    Cycles start = cycleCount;
    chargePrimitive(Primitive::ContextSwitch);
    Tracer::instance().complete(start, cycleCount - start,
                                TraceEvent::ThreadSwitch,
                                "thread_switch");
}

void
SimKernel::emulateInstructions(std::uint64_t n)
{
    counters.inc(kstat::emulatedInstrs, n);
    countEvent(HwCounter::EmulatedInstrs, n);
    // Each emulated instruction decodes and interprets in the kernel:
    // a handful of cycles beyond the trap that delivered it.
    Tracer::instance().recordAt(cycleCount, TraceEvent::EmulatedInstr,
                                TracePhase::Instant, "emulate", n);
    Cycles c = n * emulatedInstrCycles;
    cycleCount += c;
    primCycles += c;
    Profiler::instance().addLeafCycles("emulate_instr", c);
}

void
SimKernel::emulateTestAndSet()
{
    counters.inc(kstat::emulatedInstrs);
    countEvent(HwCounter::EmulatedInstrs);
    countEvent(HwCounter::EmulatedTasOps);
    // A dedicated fast trap vector: hardware entry/exit plus a short
    // interrupts-disabled test-and-set sequence (~80 cycles), much
    // cheaper than the general trap path but far dearer than an
    // atomic instruction would be.
    Cycles c = desc.timing.trapEnterCycles +
               desc.timing.trapReturnCycles +
               emulatedTasSequenceCycles;
    cycleCount += c;
    primCycles += c;
    Profiler::instance().addLeafCycles("emulated_test_and_set", c);
}

void
SimKernel::otherException()
{
    ProfScope prof("exception");
    counters.inc(kstat::otherExceptions);
    countEvent(HwCounter::KernelTraps);
    Cycles start = cycleCount;
    chargePrimitive(Primitive::Trap);
    Tracer::instance().complete(start, cycleCount - start,
                                TraceEvent::TrapEnter, "exception");
}

void
SimKernel::touchPages(const std::vector<Vpn> &pages, bool kernel_space)
{
    AddressSpace &space =
        kernel_space ? kernelSpace() : currentSpace();
    ProfScope prof("tlb_refill");
    Tracer::instance().setCycle(cycleCount);
    for (Vpn vpn : pages) {
        TlbLookup r = tlbModel.lookup(vpn, space.asid(), kernel_space);
        if (!r.hit) {
            cycleCount += r.missCycles;
            primCycles += r.missCycles;
            Profiler::instance().addLeafCycles(
                kernel_space ? "miss_kernel" : "miss_user",
                r.missCycles);
            Tracer::instance().setCycle(cycleCount);
            counters.inc(kernel_space ? kstat::kernelTlbMisses
                                      : kstat::userTlbMisses);
            WalkResult w = space.pageTable().walk(vpn);
            Pte pte = w.pte ? *w.pte : Pte{vpn, {}, false, false, false};
            tlbModel.insert(vpn, space.asid(), pte.pfn, pte.prot);
            // Refilling from a *mapped* page table makes the walk
            // itself reference kernel space: possible second-level
            // miss (s5: "Page tables, for instance, remain mapped in
            // kernel mode; TLB entries are needed to map the page
            // tables themselves").
            if (!kernel_space) {
                // Each address space has its own kernel-mapped table
                // pages; more spaces means more table pages competing
                // for TLB entries.
                Vpn table_page = 0x800 + space.asid() +
                                 ((vpn >> 10) % 2);
                TlbLookup k =
                    tlbModel.lookup(table_page, 0, true);
                if (!k.hit) {
                    cycleCount += k.missCycles;
                    primCycles += k.missCycles;
                    Profiler::instance().addLeafCycles(
                        "miss_page_table", k.missCycles);
                    Tracer::instance().setCycle(cycleCount);
                    counters.inc(kstat::kernelTlbMisses);
                    tlbModel.insert(table_page, 0, table_page, {});
                }
            }
        }
    }
}

void
SimKernel::touchWorkingSet()
{
    touchPages(currentSpace().workingSet(), false);
}

void
SimKernel::chargeMicros(double us)
{
    Cycles c = desc.clock.microsToCycles(us);
    cycleCount += c;
    Profiler::instance().addCycles(c);
}

void
SimKernel::runUserCode(std::uint64_t instructions)
{
    // Application instruction throughput scales with the machine's
    // integer performance; normalize so the CVAX retires one
    // instruction per ~1.4 cycles.
    double cpi = 1.4 / desc.appPerfVsCvax *
                 (desc.clock.mhz() / 11.1);
    auto c = static_cast<Cycles>(instructions * cpi + 0.5);
    cycleCount += c;
    Profiler::instance().addLeafCycles("user_code", c);
}

double
SimKernel::elapsedMicros() const
{
    return desc.clock.cyclesToMicros(cycleCount);
}

void
SimKernel::resetAccounting()
{
    cycleCount = 0;
    primCycles = 0;
    counters.reset();
    tlbModel.resetStats();
    cacheModel.resetStats();
}

} // namespace aosd
