#include "os/kernel/kernel.hh"

#include "cpu/decoded_program.hh"
#include "cpu/exec_model.hh"
#include "cpu/handlers.hh"
#include "sim/batch/batch.hh"
#include "sim/counters/counters.hh"
#include "sim/logging.hh"
#include "sim/sampling/sampler.hh"
#include "sim/spantrace/spantrace.hh"
#include "sim/trace.hh"

namespace aosd
{

KernelWindowCosts
kernelWindowCosts(const MachineDesc &machine)
{
    const PrimitiveCostDb &db = sharedCostDb();
    KernelWindowCosts c;
    c.syscallCycles = db.cycles(machine.id, Primitive::NullSyscall);
    c.trapCycles = db.cycles(machine.id, Primitive::Trap);
    c.switchCycles = db.cycles(machine.id, Primitive::ContextSwitch);
    c.pteChangeCycles = db.cycles(machine.id, Primitive::PteChange);
    c.emulInstrCycles = emulatedInstrCycles;
    c.emulTasCycles = machine.timing.trapEnterCycles +
                      machine.timing.trapReturnCycles +
                      emulatedTasSequenceCycles;
    return c;
}

SimKernel::SimKernel(const MachineDesc &machine)
    : desc(machine), costs(sharedCostDb()), refExec(machine),
      tlbModel(machine.tlb), cacheModel(machine.cache)
{
    for (Primitive p : allPrimitives)
        primCost[static_cast<std::size_t>(p)] = &costs.cost(desc.id, p);
    statSyscalls = &counters.handle(kstat::syscalls);
    statTraps = &counters.handle(kstat::traps);
    statAddrSpaceSwitches = &counters.handle(kstat::addrSpaceSwitches);
    statThreadSwitches = &counters.handle(kstat::threadSwitches);
    statEmulatedInstrs = &counters.handle(kstat::emulatedInstrs);
    statKernelTlbMisses = &counters.handle(kstat::kernelTlbMisses);
    statUserTlbMisses = &counters.handle(kstat::userTlbMisses);
    statOtherExceptions = &counters.handle(kstat::otherExceptions);
    statPteChanges = &counters.handle(kstat::pteChanges);
    tasSeq.trapEnter(/*counts_as_instr=*/false)
        .microcoded(emulatedTasSequenceCycles)
        .trapReturn();
    // No memory ops, so the whole fast-trap sequence decodes to one
    // constant: trap entry + return hardware plus the t&s microcode.
    tasCycles = decodeStream(desc, tasSeq).tailCycles;
    if (desc.tlb.management == TlbManagement::Software) {
        swRefillUserSeq = tlbRefillSeq(desc, false);
        swRefillKernelSeq = tlbRefillSeq(desc, true);
        hasSwRefill = true;
    }
    // One ALU op per cycle of per-instruction emulation work, so the
    // stream's interpreted total equals n * emulatedInstrCycles.
    emulStepSeq.alu(emulatedInstrCycles);
    // Space 0 is the kernel itself; its working set models the mapped
    // kernel data (page tables and the like) that still needs TLB
    // entries even when kernel *code* runs unmapped (s5).
    spaces.push_back(
        std::make_unique<AddressSpace>("kernel", 0, desc));
    kernelSpace().setWorkingSet(0x800, 8);
}

AddressSpace &
SimKernel::createSpace(const std::string &name)
{
    Asid asid = nextAsid++;
    if (desc.tlb.processIdTags && desc.tlb.pidCount > 0) {
        // ASIDs wrap on real hardware; recycling one forces a purge of
        // stale translations.
        Asid wrapped = asid % desc.tlb.pidCount;
        if (asid >= desc.tlb.pidCount) {
            tlbModel.invalidateAsid(wrapped);
            countEvent(HwCounter::AsidRollovers);
            asid = wrapped == 0 ? 1 : wrapped;
        }
    }
    spaces.push_back(std::make_unique<AddressSpace>(name, asid, desc));
    return *spaces.back();
}

AddressSpace &
SimKernel::currentSpace()
{
    return *spaces[currentIdx];
}

void
SimKernel::chargePrimitive(Primitive p)
{
    const PrimitiveCost &pc = *primCost[static_cast<std::size_t>(p)];
    if (!predecodeEnabled() && !tracerEnabled()) {
        // Reference mode: re-interpret the handler program op by op
        // for every kernel event instead of charging the cached
        // superblock totals. The execution is deterministic (the
        // buffer resets per run), so the cycles and the profiler's
        // phase attribution equal the cached path's exactly; its
        // micro-event counter bumps are already folded into the
        // cached cost constants, so they must not leak into the
        // enclosing workload window's counters.
        CounterPause pause;
        ExecResult r = refExec.run(cachedHandler(desc, p));
        cycleCount += r.cycles;
        primCycles += r.cycles;
        return;
    }
    // Attribute the cached handler simulation phase by phase, so a
    // kernel-level profile bottoms out in the same hardware causes
    // (trap_hardware, write_buffer_stall, ...) the exec model charged.
    if (profilerEnabled()) {
        for (const PhaseResult &ph : pc.detail.phases) {
            ProfScope scope(phaseSlug(ph.kind));
            profileBreakdown(ph.breakdown);
        }
    }
    // Same per-phase detail for an open request's span tree; the
    // reference branch above gets equal leaves from ExecModel::run,
    // so spans are byte-identical in both predecode modes.
    if (spantraceEnabled()) {
        for (const PhaseResult &ph : pc.detail.phases)
            spanLeaf(phaseSlug(ph.kind), ph.cycles);
    }
    cycleCount += pc.cycles;
    primCycles += pc.cycles;
}

bool
SimKernel::batchActive() const
{
    return batchEnabled() && predecodeEnabled() &&
           batchObserversIdle();
}

void
SimKernel::chargePrimitiveBatch(const char *scope, Primitive p,
                                std::uint64_t n)
{
    const PrimitiveCost &pc = *primCost[static_cast<std::size_t>(p)];
    if (profilerEnabled()) {
        // Replay the per-event attribution in closed form: the outer
        // scope and each phase entered n times, every cause leaf
        // charged its per-event constant × n, and every histogram fed
        // n copies of the per-event value — the same nodes in the
        // same creation order as n per-event invocations.
        Profiler &prof = Profiler::instance();
        ProfNode *outer = prof.pushRepeated(scope, n);
        Cycles outer_each = 0;
        for (const PhaseResult &ph : pc.detail.phases) {
            ProfNode *pn = prof.pushRepeated(phaseSlug(ph.kind), n);
            profileBreakdownRepeated(ph.breakdown, n);
            Cycles each = ph.breakdown.total();
            prof.popRepeated(pn, each, n);
            outer_each += each;
        }
        prof.popRepeated(outer, outer_each, n);
    }
    cycleCount += pc.cycles * n;
    primCycles += pc.cycles * n;
}

void
SimKernel::batchScopedPrimitive(const char *scope, Primitive p,
                                std::uint64_t *stat, HwCounter event,
                                std::uint64_t n, bool sample_each)
{
    const PrimitiveCost &pc = *primCost[static_cast<std::size_t>(p)];
    const Cycles start = cycleCount;
    const Cycles prim_start = primCycles;
    *stat += n;
    countEvent(event, n);
    chargePrimitiveBatch(scope, p, n);
    if (sample_each) {
        CounterSet per;
        per.set(event, 1);
        CounterSampler::instance().tickRun(start, pc.cycles, n, per,
                                           prim_start, pc.cycles);
    }
}

void
SimKernel::syscallBatch(std::uint64_t n, bool sample_each)
{
    if (n == 0)
        return;
    if (!batchActive()) {
        for (std::uint64_t i = 0; i < n; ++i) {
            syscall();
            if (sample_each)
                CounterSampler::instance().tick(
                    cycleCount, static_cast<double>(primCycles));
        }
        return;
    }
    batchScopedPrimitive("syscall", Primitive::NullSyscall,
                         statSyscalls, HwCounter::KernelSyscalls, n,
                         sample_each);
}

void
SimKernel::trapBatch(std::uint64_t n, bool sample_each)
{
    if (n == 0)
        return;
    if (!batchActive()) {
        for (std::uint64_t i = 0; i < n; ++i) {
            trap();
            if (sample_each)
                CounterSampler::instance().tick(
                    cycleCount, static_cast<double>(primCycles));
        }
        return;
    }
    batchScopedPrimitive("trap", Primitive::Trap, statTraps,
                         HwCounter::KernelTraps, n, sample_each);
}

void
SimKernel::otherExceptionBatch(std::uint64_t n, bool sample_each)
{
    if (n == 0)
        return;
    if (!batchActive()) {
        for (std::uint64_t i = 0; i < n; ++i) {
            otherException();
            if (sample_each)
                CounterSampler::instance().tick(
                    cycleCount, static_cast<double>(primCycles));
        }
        return;
    }
    batchScopedPrimitive("exception", Primitive::Trap,
                         statOtherExceptions, HwCounter::KernelTraps,
                         n, sample_each);
}

void
SimKernel::threadSwitchBatch(std::uint64_t n, bool sample_each)
{
    if (n == 0)
        return;
    if (!batchActive()) {
        for (std::uint64_t i = 0; i < n; ++i) {
            threadSwitch();
            if (sample_each)
                CounterSampler::instance().tick(
                    cycleCount, static_cast<double>(primCycles));
        }
        return;
    }
    batchScopedPrimitive("thread_switch", Primitive::ContextSwitch,
                         statThreadSwitches,
                         HwCounter::ThreadSwitches, n, sample_each);
}

void
SimKernel::emulateTestAndSetBatch(std::uint64_t n, bool sample_each)
{
    if (n == 0)
        return;
    if (!batchActive()) {
        for (std::uint64_t i = 0; i < n; ++i) {
            emulateTestAndSet();
            if (sample_each)
                CounterSampler::instance().tick(
                    cycleCount, static_cast<double>(primCycles));
        }
        return;
    }
    const Cycles start = cycleCount;
    const Cycles prim_start = primCycles;
    *statEmulatedInstrs += n;
    countEvent(HwCounter::EmulatedInstrs, n);
    countEvent(HwCounter::EmulatedTasOps, n);
    cycleCount += tasCycles * n;
    primCycles += tasCycles * n;
    if (profilerEnabled())
        Profiler::instance().addLeafCyclesRepeated(
            "emulated_test_and_set", tasCycles, n);
    if (sample_each) {
        CounterSet per;
        per.set(HwCounter::EmulatedInstrs, 1);
        per.set(HwCounter::EmulatedTasOps, 1);
        CounterSampler::instance().tickRun(start, tasCycles, n, per,
                                           prim_start, tasCycles);
    }
}

void
SimKernel::emulateSingleInstructionsBatch(std::uint64_t n,
                                          bool sample_each)
{
    if (n == 0)
        return;
    if (!batchActive()) {
        for (std::uint64_t i = 0; i < n; ++i) {
            emulateInstructions(1);
            if (sample_each)
                CounterSampler::instance().tick(
                    cycleCount, static_cast<double>(primCycles));
        }
        return;
    }
    const Cycles start = cycleCount;
    const Cycles prim_start = primCycles;
    *statEmulatedInstrs += n;
    countEvent(HwCounter::EmulatedInstrs, n);
    cycleCount += emulatedInstrCycles * n;
    primCycles += emulatedInstrCycles * n;
    if (profilerEnabled())
        Profiler::instance().addLeafCyclesRepeated(
            "emulate_instr", emulatedInstrCycles, n);
    if (sample_each) {
        CounterSet per;
        per.set(HwCounter::EmulatedInstrs, 1);
        CounterSampler::instance().tickRun(start, emulatedInstrCycles,
                                           n, per, prim_start,
                                           emulatedInstrCycles);
    }
}

void
SimKernel::pteChangeBatch(AddressSpace &space,
                          const std::vector<Vpn> &vpns, PageProt prot)
{
    if (vpns.empty())
        return;
    if (!batchActive()) {
        for (Vpn vpn : vpns)
            pteChange(space, vpn, prot);
        return;
    }
    const auto n = static_cast<std::uint64_t>(vpns.size());
    *statPteChanges += n;
    countEvent(HwCounter::PteChanges, n);
    chargePrimitiveBatch("pte_change", Primitive::PteChange, n);
    // Stepped state edits at the batch boundary: each page's PTE,
    // TLB shootdown and (virtually-indexed) cache flush. These only
    // mutate state and bump their own counters — no cycles, no
    // attribution — so running them after the aggregate charge
    // leaves every observable total equal to the interleaved loop's.
    for (Vpn vpn : vpns) {
        space.pageTable().protect(vpn, prot);
        tlbModel.invalidate(vpn, space.asid());
        if (desc.cache.indexing == CacheIndexing::Virtual)
            cacheModel.flushPage(vpn << pageShift, space.asid());
    }
}

void
SimKernel::syscall()
{
    ProfScope prof("syscall");
    SpanScope span("syscall", cycleCount);
    ++*statSyscalls;
    countEvent(HwCounter::KernelSyscalls);
    Cycles start = cycleCount;
    chargePrimitive(Primitive::NullSyscall);
    if (tracerEnabled())
        Tracer::instance().complete(start, cycleCount - start,
                                    TraceEvent::Syscall, "syscall");
}

void
SimKernel::trap()
{
    ProfScope prof("trap");
    SpanScope span("trap", cycleCount);
    ++*statTraps;
    countEvent(HwCounter::KernelTraps);
    Cycles start = cycleCount;
    if (tracerEnabled())
        Tracer::instance().recordAt(start, TraceEvent::TrapEnter,
                                    TracePhase::Begin, "trap");
    chargePrimitive(Primitive::Trap);
    if (tracerEnabled())
        Tracer::instance().recordAt(cycleCount, TraceEvent::TrapExit,
                                    TracePhase::End, "trap");
}

void
SimKernel::pteChange(AddressSpace &space, Vpn vpn, PageProt prot)
{
    ProfScope prof("pte_change");
    SpanScope span("pte_change", cycleCount);
    ++*statPteChanges;
    countEvent(HwCounter::PteChanges);
    chargePrimitive(Primitive::PteChange);
    space.pageTable().protect(vpn, prot);
    tlbModel.invalidate(vpn, space.asid());
    // Virtually-addressed caches must also drop the page's lines; the
    // simulated primitive already charges the machine's sweep cost
    // (i860: 536 of 559 instructions), so only state changes here.
    if (desc.cache.indexing == CacheIndexing::Virtual)
        cacheModel.flushPage(vpn << pageShift, space.asid());
}

void
SimKernel::contextSwitchTo(AddressSpace &target)
{
    AddressSpace &from = currentSpace();
    if (&target == &from)
        return;
    ProfScope prof("context_switch");
    SpanScope span("context_switch", cycleCount);
    ++*statAddrSpaceSwitches;
    countEvent(HwCounter::ContextSwitches);
    // An address-space switch implies a thread switch (Table 7 note).
    ++*statThreadSwitches;
    countEvent(HwCounter::ThreadSwitches);
    if (tracerEnabled())
        Tracer::instance().recordAt(cycleCount,
                                    TraceEvent::ContextSwitch,
                                    TracePhase::Begin,
                                    "context_switch");
    chargePrimitive(Primitive::ContextSwitch);

    Cycles purge = tlbModel.switchContext();
    cycleCount += purge;
    primCycles += purge;
    if (purge) {
        countEvent(HwCounter::TlbPurgeCycles, purge);
        if (profilerEnabled())
            Profiler::instance().addLeafCycles("tlb_purge", purge);
        spanLeaf("tlb_purge", purge);
    }

    bool cache_tagged = !desc.cache.flushOnContextSwitch;
    Cycles flush = cacheModel.switchContext(cache_tagged);
    cycleCount += flush;
    primCycles += flush;
    if (flush) {
        countEvent(HwCounter::CacheFlushCycles, flush);
        if (profilerEnabled())
            Profiler::instance().addLeafCycles("cache_flush", flush);
        spanLeaf("cache_flush", flush);
    }

    for (std::size_t i = 0; i < spaces.size(); ++i) {
        if (spaces[i].get() == &target) {
            currentIdx = i;
            touchWorkingSet();
            if (tracerEnabled())
                Tracer::instance().recordAt(cycleCount,
                                            TraceEvent::ContextSwitch,
                                            TracePhase::End,
                                            "context_switch");
            return;
        }
    }
    panic("switch to a space this kernel does not own");
}

void
SimKernel::threadSwitch()
{
    ProfScope prof("thread_switch");
    SpanScope span("thread_switch", cycleCount);
    ++*statThreadSwitches;
    countEvent(HwCounter::ThreadSwitches);
    Cycles start = cycleCount;
    chargePrimitive(Primitive::ContextSwitch);
    if (tracerEnabled())
        Tracer::instance().complete(start, cycleCount - start,
                                    TraceEvent::ThreadSwitch,
                                    "thread_switch");
}

void
SimKernel::emulateInstructions(std::uint64_t n)
{
    *statEmulatedInstrs += n;
    countEvent(HwCounter::EmulatedInstrs, n);
    // Each emulated instruction decodes and interprets in the kernel:
    // a handful of cycles beyond the trap that delivered it.
    if (tracerEnabled())
        Tracer::instance().recordAt(cycleCount,
                                    TraceEvent::EmulatedInstr,
                                    TracePhase::Instant, "emulate", n);
    Cycles c;
    if (!predecodeEnabled() && !tracerEnabled()) {
        // Interpreter reference path: decode and dispatch each
        // emulated instruction individually. The stream's total is
        // emulatedInstrCycles by construction, so the charge is
        // identical to the folded fast-path constant below.
        CounterPause cpause;
        ProfPause ppause;
        c = 0;
        for (std::uint64_t i = 0; i < n; ++i)
            c += refExec.runStream(emulStepSeq).cycles;
    } else {
        c = n * emulatedInstrCycles;
    }
    cycleCount += c;
    primCycles += c;
    if (profilerEnabled())
        Profiler::instance().addLeafCycles("emulate_instr", c);
    spanLeaf("emulate_instr", c);
}

void
SimKernel::emulateTestAndSet()
{
    ++*statEmulatedInstrs;
    countEvent(HwCounter::EmulatedInstrs);
    countEvent(HwCounter::EmulatedTasOps);
    // A dedicated fast trap vector: hardware entry/exit plus a short
    // interrupts-disabled test-and-set sequence (~80 cycles), much
    // cheaper than the general trap path but far dearer than an
    // atomic instruction would be. With predecode on, the sequence's
    // cycle total was computed once at construction; the interpreter
    // fallback re-runs the fast-trap stream per event, with its
    // micro-events and attribution suppressed (they are already
    // folded into the constant and the leaf below).
    Cycles c;
    if (!predecodeEnabled() && !tracerEnabled()) {
        CounterPause cpause;
        ProfPause ppause;
        c = refExec.runStream(tasSeq).cycles;
    } else {
        c = tasCycles;
    }
    cycleCount += c;
    primCycles += c;
    if (profilerEnabled())
        Profiler::instance().addLeafCycles("emulated_test_and_set", c);
    spanLeaf("emulated_test_and_set", c);
}

void
SimKernel::otherException()
{
    ProfScope prof("exception");
    SpanScope span("exception", cycleCount);
    ++*statOtherExceptions;
    countEvent(HwCounter::KernelTraps);
    Cycles start = cycleCount;
    chargePrimitive(Primitive::Trap);
    Tracer::instance().complete(start, cycleCount - start,
                                TraceEvent::TrapEnter, "exception");
}

Cycles
SimKernel::interpRefillCost(bool kernel_space)
{
    // Reference mode on a software-managed TLB: the refill really
    // is a kernel handler (s5), so run it through the interpreter
    // like every other handler. Its micro-event bumps and profile
    // breakdown are already folded into the modeled constant, so
    // they must not leak into the workload window.
    CounterPause cpause;
    ProfPause ppause;
    return refExec
        .runStream(kernel_space ? swRefillKernelSeq : swRefillUserSeq)
        .cycles;
}

void
SimKernel::touchPages(const std::vector<Vpn> &pages, bool kernel_space)
{
    AddressSpace &space =
        kernel_space ? kernelSpace() : currentSpace();
    ProfScope prof("tlb_refill");
    const Cycles span_start = cycleCount;
    const bool tracing = tracerEnabled();
    if (tracing)
        Tracer::instance().setCycle(cycleCount);
    const Asid asid = space.asid();
    std::uint64_t *miss_stat =
        kernel_space ? statKernelTlbMisses : statUserTlbMisses;
    const char *miss_leaf = kernel_space ? "miss_kernel" : "miss_user";
    // Loop-invariant: whether misses charge the interpreted refill
    // handler (reference mode) or the lookup's modeled constant.
    const bool interp_refill =
        hasSwRefill && !predecodeEnabled() && !tracing;
    for (Vpn vpn : pages) {
        TlbLookup r = tlbModel.lookup(vpn, asid, kernel_space);
        if (!r.hit) {
            Cycles mc = interp_refill ? interpRefillCost(kernel_space)
                                      : r.missCycles;
            cycleCount += mc;
            primCycles += mc;
            if (profilerEnabled())
                Profiler::instance().addLeafCycles(miss_leaf, mc);
            if (tracing)
                Tracer::instance().setCycle(cycleCount);
            ++*miss_stat;
            const Pte *walked = space.translate(vpn);
            Pte pte =
                walked ? *walked : Pte{vpn, {}, false, false, false};
            tlbModel.refill(vpn, asid, pte.pfn, pte.prot, r.fillCell);
            // Refilling from a *mapped* page table makes the walk
            // itself reference kernel space: possible second-level
            // miss (s5: "Page tables, for instance, remain mapped in
            // kernel mode; TLB entries are needed to map the page
            // tables themselves").
            if (!kernel_space) {
                // Each address space has its own kernel-mapped table
                // pages; more spaces means more table pages competing
                // for TLB entries.
                Vpn table_page = 0x800 + asid + ((vpn >> 10) % 2);
                TlbLookup k =
                    tlbModel.lookup(table_page, 0, true);
                if (!k.hit) {
                    Cycles kc = interp_refill ? interpRefillCost(true)
                                              : k.missCycles;
                    cycleCount += kc;
                    primCycles += kc;
                    if (profilerEnabled())
                        Profiler::instance().addLeafCycles(
                            "miss_page_table", kc);
                    if (tracing)
                        Tracer::instance().setCycle(cycleCount);
                    ++*statKernelTlbMisses;
                    tlbModel.refill(table_page, 0, table_page, {},
                                    k.fillCell);
                }
            }
        }
    }
    if (cycleCount > span_start)
        spanLeaf("tlb_refill", cycleCount - span_start);
}

void
SimKernel::touchWorkingSet()
{
    touchPages(currentSpace().workingSet(), false);
}

void
SimKernel::chargeMicros(double us)
{
    Cycles c = desc.clock.microsToCycles(us);
    cycleCount += c;
    if (profilerEnabled())
        Profiler::instance().addCycles(c);
}

void
SimKernel::runUserCode(std::uint64_t instructions)
{
    // Application instruction throughput scales with the machine's
    // integer performance; normalize so the CVAX retires one
    // instruction per ~1.4 cycles.
    double cpi = 1.4 / desc.appPerfVsCvax *
                 (desc.clock.mhz() / 11.1);
    auto c = static_cast<Cycles>(instructions * cpi + 0.5);
    cycleCount += c;
    if (profilerEnabled())
        Profiler::instance().addLeafCycles("user_code", c);
}

double
SimKernel::elapsedMicros() const
{
    return desc.clock.cyclesToMicros(cycleCount);
}

void
SimKernel::resetAccounting()
{
    cycleCount = 0;
    primCycles = 0;
    counters.reset();
    tlbModel.resetStats();
    cacheModel.resetStats();
}

} // namespace aosd
