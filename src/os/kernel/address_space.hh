/**
 * @file
 * Address spaces: the unit a kernelized OS multiplies (§2.2, §5).
 *
 * Each space owns the page-table structure natural to its machine and
 * an ASID. The kernel tracks the current space and pays the machine's
 * context-switch costs (TLB purge on untagged hardware, cache flush on
 * untagged virtual caches) when it changes.
 */

#ifndef AOSD_OS_KERNEL_ADDRESS_SPACE_HH
#define AOSD_OS_KERNEL_ADDRESS_SPACE_HH

#include <memory>
#include <string>
#include <vector>

#include "arch/machine_desc.hh"
#include "mem/page_table.hh"

namespace aosd
{

/** One protection domain. */
class AddressSpace
{
  public:
    AddressSpace(std::string name, Asid asid, const MachineDesc &machine);

    const std::string &name() const { return spaceName; }
    Asid asid() const { return spaceAsid; }

    /** Mutable table access drops the walk memo (the caller may be
     *  about to change mappings — vm_manager maps through this). */
    PageTable &
    pageTable()
    {
        walkCache.clear();
        return *table;
    }
    const PageTable &pageTable() const { return *table; }

    /** Map `count` pages starting at vpn to frames starting at pfn. */
    void mapRange(Vpn vpn, std::uint64_t count, Pfn pfn, PageProt prot);

    /** Unmap `count` pages starting at vpn. */
    void unmapRange(Vpn vpn, std::uint64_t count);

    /**
     * pageTable().walk(vpn).pte, memoized. A walk is a pure function
     * of the current mappings, and the kernel's TLB-refill loop
     * re-walks the same working-set pages millions of times per
     * Table 7 cell, so the structural walk runs once per (space,
     * page) and every later refill takes the probe below. Any
     * mapping change (mapRange/unmapRange/mutable pageTable())
     * empties the memo. Returns nullptr for an unmapped page
     * (negative results are memoized too).
     */
    const Pte *
    translate(Vpn vpn)
    {
        if (!walkCache.empty()) {
            std::uint32_t mask =
                static_cast<std::uint32_t>(walkCache.size()) - 1;
            for (std::uint32_t i = hashVpn(vpn) & mask;
                 walkCache[i].state != CachedWalk::Empty;
                 i = (i + 1) & mask) {
                if (walkCache[i].vpn == vpn)
                    return walkCache[i].state == CachedWalk::Mapped
                               ? &walkCache[i].pte
                               : nullptr;
            }
        }
        return translateSlow(vpn);
    }

    /**
     * The pages this space touches between reschedules — the working
     * set whose TLB entries must be re-established after a switch that
     * evicted them. Used by the workload engine (Table 7) and the LRPC
     * model (Table 4).
     */
    const std::vector<Vpn> &workingSet() const { return wset; }
    void setWorkingSet(std::vector<Vpn> pages) { wset = std::move(pages); }

    /** Convenience: working set of `pages` consecutive pages at base. */
    void setWorkingSet(Vpn base, std::uint64_t pages);

  private:
    /** One memoized walk; open-addressed on vpn, ≤50% load. */
    struct CachedWalk
    {
        enum State : std::uint8_t { Empty, Mapped, Unmapped };
        Vpn vpn = 0;
        Pte pte;
        State state = Empty;
    };

    static std::uint32_t
    hashVpn(Vpn vpn)
    {
        std::uint64_t h = vpn * 0x9E3779B97F4A7C15ull;
        return static_cast<std::uint32_t>(h >> 32);
    }

    /** Walk the real table, memoize, return. Grows/rehashes the memo
     *  when it passes half full. */
    const Pte *translateSlow(Vpn vpn);

    std::string spaceName;
    Asid spaceAsid;
    std::unique_ptr<PageTable> table;
    std::vector<Vpn> wset;
    std::vector<CachedWalk> walkCache;
};

} // namespace aosd

#endif // AOSD_OS_KERNEL_ADDRESS_SPACE_HH
