/**
 * @file
 * Address spaces: the unit a kernelized OS multiplies (§2.2, §5).
 *
 * Each space owns the page-table structure natural to its machine and
 * an ASID. The kernel tracks the current space and pays the machine's
 * context-switch costs (TLB purge on untagged hardware, cache flush on
 * untagged virtual caches) when it changes.
 */

#ifndef AOSD_OS_KERNEL_ADDRESS_SPACE_HH
#define AOSD_OS_KERNEL_ADDRESS_SPACE_HH

#include <memory>
#include <string>
#include <vector>

#include "arch/machine_desc.hh"
#include "mem/page_table.hh"

namespace aosd
{

/** One protection domain. */
class AddressSpace
{
  public:
    AddressSpace(std::string name, Asid asid, const MachineDesc &machine);

    const std::string &name() const { return spaceName; }
    Asid asid() const { return spaceAsid; }

    PageTable &pageTable() { return *table; }
    const PageTable &pageTable() const { return *table; }

    /** Map `count` pages starting at vpn to frames starting at pfn. */
    void mapRange(Vpn vpn, std::uint64_t count, Pfn pfn, PageProt prot);

    /** Unmap `count` pages starting at vpn. */
    void unmapRange(Vpn vpn, std::uint64_t count);

    /**
     * The pages this space touches between reschedules — the working
     * set whose TLB entries must be re-established after a switch that
     * evicted them. Used by the workload engine (Table 7) and the LRPC
     * model (Table 4).
     */
    const std::vector<Vpn> &workingSet() const { return wset; }
    void setWorkingSet(std::vector<Vpn> pages) { wset = std::move(pages); }

    /** Convenience: working set of `pages` consecutive pages at base. */
    void setWorkingSet(Vpn base, std::uint64_t pages);

  private:
    std::string spaceName;
    Asid spaceAsid;
    std::unique_ptr<PageTable> table;
    std::vector<Vpn> wset;
};

} // namespace aosd

#endif // AOSD_OS_KERNEL_ADDRESS_SPACE_HH
