#include "os/ipc/urpc.hh"

#include "cpu/primitive_costs.hh"
#include "mem/cache.hh"
#include "sim/counters/counters.hh"
#include "sim/profile/profile.hh"
#include "sim/spantrace/spantrace.hh"

namespace aosd
{

UrpcModel::UrpcModel(const MachineDesc &machine, UrpcConfig config)
    : desc(machine), cfg(config)
{}

UrpcBreakdown
UrpcModel::nullCall() const
{
    auto us = [&](Cycles c) { return desc.clock.cyclesToMicros(c); };
    UrpcBreakdown b;

    // Two queue crossings (call and reply), each guarded by a lock.
    // On machines without an interlocked instruction this is the
    // kernel-trap path — URPC cannot fully escape the kernel there.
    LockImpl impl = naturalLockImpl(desc);
    b.lockUs = 2.0 * us(lockPairCycles(desc, impl));

    // Arguments onto the shared queue, results off it.
    b.copyUs = 2.0 * us(copyCycles(desc, cfg.argBytes));

    // Call + reply through shared memory, no kernel on the data path.
    countEvent(HwCounter::IpcMessages, 2);
    countEvent(HwCounter::IpcFastPath);
    countEvent(HwCounter::IpcBytesCopied, 2ull * cfg.argBytes);

    // The client's thread blocks at user level; the server's runs.
    ThreadCosts costs = computeThreadCosts(desc, cfg.threadOpts);
    b.threadSwitchUs = 2.0 * us(costs.userThreadSwitch);

    // Kernel processor reallocation, amortized over a burst of calls.
    Cycles realloc =
        sharedCostDb().cycles(desc.id, Primitive::NullSyscall) +
        sharedCostDb().cycles(desc.id, Primitive::ContextSwitch);
    b.reallocationUs =
        us(realloc) / std::max<std::uint32_t>(cfg.callsPerReallocation,
                                              1);

    Profiler &prof = Profiler::instance();
    if (prof.enabled()) {
        auto cyc = [&](double micros) {
            return desc.clock.microsToCycles(micros);
        };
        ProfScope scope("urpc");
        prof.addLeafCycles("locks", cyc(b.lockUs));
        prof.addLeafCycles("copy", cyc(b.copyUs));
        prof.addLeafCycles("thread_switch", cyc(b.threadSwitchUs));
        prof.addLeafCycles("reallocation", cyc(b.reallocationUs));
    }

    // Same components as one span group for an open traced request.
    if (spantraceEnabled()) {
        auto cyc = [&](double micros) {
            return desc.clock.microsToCycles(micros);
        };
        SpanGroup span("urpc");
        spanLeaf("locks", cyc(b.lockUs));
        spanLeaf("copy", cyc(b.copyUs));
        spanLeaf("thread_switch", cyc(b.threadSwitchUs));
        spanLeaf("reallocation", cyc(b.reallocationUs));
    }
    return b;
}

} // namespace aosd
