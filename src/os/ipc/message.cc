#include "os/ipc/message.hh"

#include "mem/cache.hh"

namespace aosd
{

bool
usesUncachedIoBuffers(const MachineDesc &machine)
{
    switch (machine.id) {
      case MachineId::R2000:
      case MachineId::R3000:
      case MachineId::I860:
        return true; // kseg1-style uncached I/O segments
      default:
        return false;
    }
}

Cycles
checksumCycles(const MachineDesc &machine, std::uint64_t bytes)
{
    std::uint64_t words = (bytes + 3) / 4;
    Cycles per_word;
    if (usesUncachedIoBuffers(machine)) {
        per_word = machine.cache.uncachedCycles + 2; // load + add/loop
    } else {
        std::uint32_t words_per_line =
            std::max<std::uint32_t>(machine.cache.lineBytes / 4, 1);
        // Streaming read: one miss per line amortized over its words.
        per_word = 1 + 2 +
                   machine.cache.missPenaltyCycles / words_per_line;
    }
    return words * per_word;
}

Cycles
marshalCycles(const MachineDesc &machine, std::uint64_t bytes,
              std::uint64_t fixed_instructions)
{
    return copyCycles(machine, bytes) + fixed_instructions;
}

} // namespace aosd
