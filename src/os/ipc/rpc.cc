#include "os/ipc/rpc.hh"

#include "cpu/primitive_costs.hh"
#include "mem/cache.hh"
#include "os/ipc/message.hh"
#include "sim/counters/counters.hh"
#include "sim/spantrace/spantrace.hh"
#include "sim/trace.hh"

namespace aosd
{

double
RpcBreakdown::totalUs() const
{
    return clientStubUs + serverStubUs + kernelTransferUs + interruptUs +
           checksumUs + copyUs + dispatchUs + controllerUs + wireUs;
}

double
RpcBreakdown::percent(double component_us) const
{
    double t = totalUs();
    return t > 0 ? 100.0 * component_us / t : 0.0;
}

double
RpcBreakdown::cpuUs() const
{
    return totalUs() - wireUs - controllerUs;
}

SrcRpcModel::SrcRpcModel(const MachineDesc &machine, RpcConfig config)
    : desc(machine), cfg(std::move(config))
{}

RpcBreakdown
SrcRpcModel::roundTrip(std::uint32_t arg_bytes,
                       std::uint32_t result_bytes) const
{
    const PrimitiveCostDb &db = sharedCostDb();
    const Clock &clk = desc.clock;
    Ethernet ether(cfg.link);

    auto us = [&](Cycles c) { return clk.cyclesToMicros(c); };

    RpcBreakdown b;

    std::uint32_t call_pkt = arg_bytes + cfg.protocolHeaderBytes;
    std::uint32_t reply_pkt = result_bytes + cfg.protocolHeaderBytes;

    // A round trip is two messages (call + reply) over the kernel-
    // mediated network path; marshaling copies both payloads at both
    // ends.
    countEvent(HwCounter::IpcMessages, 2);
    countEvent(HwCounter::IpcSlowPath);
    countEvent(HwCounter::IpcBytesCopied,
               static_cast<std::uint64_t>(cfg.copiesPerTransfer) *
                   (arg_bytes + result_bytes));

    // Stubs: fixed bookkeeping; the byte copies are priced separately
    // so the copy component is visible (s2.4).
    b.clientStubUs = us(cfg.clientStubInstructions);
    b.serverStubUs = us(cfg.serverStubInstructions);

    // Kernel transfer: system calls to send/receive plus the blocking
    // context switches while each side waits.
    b.kernelTransferUs =
        cfg.syscallsPerRoundTrip *
            db.micros(desc.id, Primitive::NullSyscall) +
        cfg.contextSwitchesPerRoundTrip *
            db.micros(desc.id, Primitive::ContextSwitch);

    // Interrupts: one trap per packet event plus handler body with
    // uncached device-register accesses.
    std::uint32_t interrupts =
        2 * cfg.link.interruptsPerPacket + 2; // rx each side + tx done
    Cycles handler = cfg.interruptHandlerInstructions +
                     static_cast<Cycles>(cfg.interruptDeviceAccesses) *
                         desc.cache.uncachedCycles;
    b.interruptUs =
        interrupts * (db.micros(desc.id, Primitive::Trap) + us(handler));

    // Checksums over both packets at both ends.
    Cycles ck = cfg.checksumPassesPerPacket *
                (checksumCycles(desc, call_pkt) +
                 checksumCycles(desc, reply_pkt));
    b.checksumUs = us(ck);

    // Marshaling copies of arguments and results.
    Cycles cp = cfg.copiesPerTransfer * (copyCycles(desc, arg_bytes) +
                                         copyCycles(desc, result_bytes));
    b.copyUs = us(cp);

    // Server thread wakeup and dispatch.
    b.dispatchUs = us(cfg.dispatchInstructions) +
                   db.micros(desc.id, Primitive::ContextSwitch);

    b.controllerUs =
        2.0 * 2.0 * cfg.link.controllerLatencyUs; // tx+rx, both packets
    b.wireUs = ether.wireTimeUs(call_pkt) + ether.wireTimeUs(reply_pkt);

    // Lay the round trip on the trace timeline in wire order.
    Tracer &tr = Tracer::instance();
    if (tr.enabled()) {
        auto cyc = [&](double micros) {
            return clk.microsToCycles(micros);
        };
        tr.completeHere(cyc(b.clientStubUs), TraceEvent::RpcPhase,
                        "rpc_client_stub", arg_bytes);
        tr.completeHere(cyc(b.kernelTransferUs), TraceEvent::RpcPhase,
                        "rpc_kernel_transfer");
        tr.completeHere(cyc(b.copyUs), TraceEvent::RpcPhase,
                        "rpc_copy");
        tr.completeHere(cyc(b.checksumUs), TraceEvent::RpcPhase,
                        "rpc_checksum");
        tr.completeHere(cyc(b.controllerUs), TraceEvent::RpcPhase,
                        "rpc_controller");
        tr.completeHere(cyc(b.wireUs), TraceEvent::RpcPhase,
                        "rpc_wire");
        tr.completeHere(cyc(b.interruptUs), TraceEvent::RpcPhase,
                        "rpc_interrupts");
        tr.completeHere(cyc(b.serverStubUs), TraceEvent::RpcPhase,
                        "rpc_server_stub", result_bytes);
        tr.completeHere(cyc(b.dispatchUs), TraceEvent::RpcPhase,
                        "rpc_dispatch");
    }

    // Same components as one span group for an open traced request,
    // in wire order.
    if (spantraceEnabled()) {
        auto cyc = [&](double micros) {
            return clk.microsToCycles(micros);
        };
        SpanGroup span("rpc");
        spanLeaf("client_stub", cyc(b.clientStubUs));
        spanLeaf("kernel_transfer", cyc(b.kernelTransferUs));
        spanLeaf("copy", cyc(b.copyUs));
        spanLeaf("checksum", cyc(b.checksumUs));
        spanLeaf("controller", cyc(b.controllerUs));
        spanLeaf("wire", cyc(b.wireUs));
        spanLeaf("interrupts", cyc(b.interruptUs));
        spanLeaf("server_stub", cyc(b.serverStubUs));
        spanLeaf("dispatch", cyc(b.dispatchUs));
    }

    return b;
}

double
SrcRpcModel::scaledLatencyUs(std::uint32_t arg_bytes,
                             std::uint32_t result_bytes,
                             double cpu_factor) const
{
    RpcBreakdown b = roundTrip(arg_bytes, result_bytes);
    // Instruction-rate components scale with the CPU; wire, controller
    // and the DRAM-paced copy/checksum streams do not (s2.1, s2.4).
    double scaled_cpu = (b.clientStubUs + b.serverStubUs +
                         b.kernelTransferUs + b.interruptUs +
                         b.dispatchUs) /
                        cpu_factor;
    double memory_bound = b.checksumUs + b.copyUs;
    return scaled_cpu + memory_bound + b.controllerUs + b.wireUs;
}

} // namespace aosd
