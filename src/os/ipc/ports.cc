#include "os/ipc/ports.hh"

#include "sim/logging.hh"

namespace aosd
{

PortSpace::PortSpace(SimKernel &kernel, std::uint32_t queue_limit)
    : sim(kernel), queueLimit(queue_limit)
{}

PortId
PortSpace::allocate(const AddressSpace &owner)
{
    PortId id = nextPort++;
    Port p;
    p.owner = &owner;
    p.senders.insert(&owner);
    ports.emplace(id, std::move(p));
    counters.inc("allocated");
    return id;
}

bool
PortSpace::destroy(PortId port, const AddressSpace &caller)
{
    auto it = ports.find(port);
    if (it == ports.end() || it->second.owner != &caller)
        return false;
    counters.inc("destroyed");
    counters.inc("dropped_messages", it->second.queue.size());
    ports.erase(it);
    return true;
}

bool
PortSpace::grantSendRight(PortId port, const AddressSpace &to)
{
    auto it = ports.find(port);
    if (it == ports.end())
        return false;
    it->second.senders.insert(&to);
    counters.inc("rights_granted");
    return true;
}

PortResult
PortSpace::send(const AddressSpace &sender, PortId port,
                std::uint32_t bytes, PortId reply_port)
{
    // Every send is a kernel call (charged + counted).
    sim.syscall();
    auto it = ports.find(port);
    if (it == ports.end())
        return PortResult::NoSuchPort;
    Port &p = it->second;
    if (!p.senders.count(&sender)) {
        counters.inc("rights_violations");
        return PortResult::NoRight;
    }
    if (p.queue.size() >= queueLimit) {
        counters.inc("queue_full");
        return PortResult::QueueFull;
    }
    PortMessage msg;
    msg.port = port;
    msg.bytes = bytes;
    msg.sender = &sender;
    msg.replyPort = reply_port;
    msg.id = nextMsg++;
    p.queue.push_back(msg);
    counters.inc("sends");
    counters.inc("bytes_sent", bytes);
    return PortResult::Success;
}

PortResult
PortSpace::receive(const AddressSpace &receiver, PortId port,
                   PortMessage &out)
{
    sim.syscall();
    auto it = ports.find(port);
    if (it == ports.end())
        return PortResult::NoSuchPort;
    Port &p = it->second;
    if (p.owner != &receiver) {
        counters.inc("rights_violations");
        return PortResult::NoRight;
    }
    if (p.queue.empty())
        return PortResult::WouldBlock;
    out = p.queue.front();
    p.queue.pop_front();
    counters.inc("receives");
    return PortResult::Success;
}

std::size_t
PortSpace::queued(PortId port) const
{
    auto it = ports.find(port);
    return it == ports.end() ? 0 : it->second.queue.size();
}

bool
PortSpace::hasSendRight(PortId port, const AddressSpace &space) const
{
    auto it = ports.find(port);
    return it != ports.end() && it->second.senders.count(&space) > 0;
}

bool
portRpc(SimKernel &kernel, PortSpace &ports, AddressSpace &client,
        AddressSpace &server, PortId service_port, PortId reply_port,
        std::uint32_t request_bytes, std::uint32_t reply_bytes)
{
    // Client sends the request and hands off to the server.
    if (ports.send(client, service_port, request_bytes, reply_port) !=
        PortResult::Success)
        return false;
    kernel.contextSwitchTo(server);

    PortMessage req;
    if (ports.receive(server, service_port, req) !=
        PortResult::Success)
        return false;

    // Server replies and the client resumes.
    if (ports.send(server, req.replyPort, reply_bytes) !=
        PortResult::Success)
        return false;
    kernel.contextSwitchTo(client);

    PortMessage reply;
    return ports.receive(client, reply_port, reply) ==
           PortResult::Success;
}

} // namespace aosd
