#include "os/ipc/rpc_sim.hh"

#include "mem/cache.hh"
#include "os/ipc/message.hh"
#include "sim/logging.hh"
#include "sim/profile/profile.hh"

namespace aosd
{

/** One endpoint: a kernel plus helpers to charge CPU phases. */
struct RpcSimulation::Node
{
    explicit Node(const MachineDesc &m) : kernel(m) {}

    SimKernel kernel;

    /** Charge raw cycles; returns their duration in microseconds. */
    double
    charge(Cycles c)
    {
        kernel.chargeCycles(c);
        return kernel.machine().clock.cyclesToMicros(c);
    }

    /** Charge cycles attributed to a named profiler leaf. */
    double
    charge(const char *leaf, Cycles c)
    {
        ProfScope scope(leaf);
        return charge(c);
    }

    /** Counted primitives (SimKernel charges internally); returns
     *  the duration so the event chain can advance wall time. */
    double
    syscall()
    {
        Cycles before = kernel.elapsedCycles();
        kernel.syscall();
        return kernel.machine().clock.cyclesToMicros(
            kernel.elapsedCycles() - before);
    }

    double
    trap()
    {
        Cycles before = kernel.elapsedCycles();
        kernel.trap();
        return kernel.machine().clock.cyclesToMicros(
            kernel.elapsedCycles() - before);
    }

    double
    threadSwitch()
    {
        Cycles before = kernel.elapsedCycles();
        kernel.threadSwitch();
        return kernel.machine().clock.cyclesToMicros(
            kernel.elapsedCycles() - before);
    }
};

RpcSimulation::RpcSimulation(const MachineDesc &machine,
                             RpcConfig config)
    : desc(machine), cfg(std::move(config))
{}

RpcSimResult
RpcSimulation::run(std::uint64_t calls, std::uint32_t arg_bytes,
                   std::uint32_t result_bytes)
{
    EventQueue events;
    Network net(events, cfg.link);
    Node client(desc), server(desc);

    const std::uint32_t call_pkt = arg_bytes + cfg.protocolHeaderBytes;
    const std::uint32_t reply_pkt =
        result_bytes + cfg.protocolHeaderBytes;
    const Cycles interrupt_body =
        cfg.interruptHandlerInstructions +
        static_cast<Cycles>(cfg.interruptDeviceAccesses) *
            desc.cache.uncachedCycles;

    RpcSimResult result;
    std::uint64_t remaining = calls;
    std::function<void()> start_call;
    std::uint32_t client_id = 0, server_id = 0;

    auto after = [&events](double us, std::function<void()> fn) {
        events.scheduleAfter(
            static_cast<Tick>(us * ticksPerMicrosecond),
            std::move(fn));
    };

    // Server: request arrives -> receive, service, reply.
    server_id = net.addNode([&](const Packet &) {
        ProfScope prof("rpc_server");
        double us = 0;
        us += server.trap(); // receive interrupt
        us += server.charge("interrupt", interrupt_body);
        us += server.charge("checksum", checksumCycles(desc, call_pkt));
        us += server.charge("copy", copyCycles(desc, arg_bytes));
        us += server.threadSwitch(); // wake the server thread
        us += server.charge("dispatch", cfg.dispatchInstructions);
        us += server.syscall(); // return from receive
        us += server.charge("stub", cfg.serverStubInstructions);
        us += server.charge("copy", copyCycles(desc, result_bytes));
        us +=
            server.charge("checksum", checksumCycles(desc, reply_pkt));
        us += server.syscall(); // send the reply
        us += server.threadSwitch(); // block for the next request
        us += server.trap(); // transmit-done interrupt
        us += server.charge("interrupt", interrupt_body / 2);
        after(us, [&net, server_id, client_id, reply_pkt] {
            net.send(server_id, client_id, reply_pkt);
        });
    });

    // Client: reply arrives -> unpack, complete, maybe start again.
    client_id = net.addNode([&](const Packet &) {
        ProfScope prof("rpc_client");
        double us = 0;
        us += client.trap(); // receive interrupt
        us += client.charge("interrupt", interrupt_body);
        us +=
            client.charge("checksum", checksumCycles(desc, reply_pkt));
        us += client.charge("copy", copyCycles(desc, result_bytes));
        us += client.threadSwitch(); // resume the caller
        us += client.syscall();      // return from receive
        after(us, [&] {
            ++result.calls;
            if (--remaining > 0)
                start_call();
        });
    });

    start_call = [&] {
        ProfScope prof("rpc_client");
        double us = 0;
        us += client.charge("stub", cfg.clientStubInstructions);
        us += client.charge("copy", copyCycles(desc, arg_bytes));
        us += client.charge("checksum", checksumCycles(desc, call_pkt));
        us += client.syscall();      // send
        us += client.threadSwitch(); // block awaiting the reply
        us += client.trap();         // transmit-done interrupt
        us += client.charge("interrupt", interrupt_body / 2);
        after(us, [&net, client_id, server_id, call_pkt] {
            net.send(client_id, server_id, call_pkt);
        });
    };

    if (calls == 0)
        return result;

    Tick run_start = events.now();
    start_call();
    events.run();

    Tick elapsed = events.now() - run_start;
    result.elapsedUs =
        static_cast<double>(elapsed) / ticksPerMicrosecond;
    result.latencyUs = result.elapsedUs /
                       static_cast<double>(std::max<std::uint64_t>(
                           result.calls, 1));
    result.clientCpuUs = client.kernel.elapsedMicros();
    result.serverCpuUs = server.kernel.elapsedMicros();
    result.packets = net.stats().get("packets");
    return result;
}

} // namespace aosd
