/**
 * @file
 * SRC-style cross-machine RPC model (Table 3, §2.1).
 *
 * A round-trip null RPC decomposes into: client/server stubs
 * (marshaling), kernel transfer (system calls + thread blocking context
 * switches), interrupt processing at both ends, checksum computation,
 * controller/DMA latency, and wire time. Every CPU-side component is
 * priced from the simulated primitives of the target machine, so the
 * paper's observation — CPU overhead, not the network, dominates; and
 * the CPU components fail to scale with integer performance — emerges
 * from the same mechanisms as Table 1.
 */

#ifndef AOSD_OS_IPC_RPC_HH
#define AOSD_OS_IPC_RPC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "arch/machine_desc.hh"
#include "net/ethernet.hh"

namespace aosd
{

/** Time distribution of one round-trip RPC, in microseconds. */
struct RpcBreakdown
{
    double clientStubUs = 0;
    double serverStubUs = 0;
    double kernelTransferUs = 0; ///< syscalls + blocking switches
    double interruptUs = 0;
    double checksumUs = 0;
    double copyUs = 0;           ///< marshaling byte copies
    double dispatchUs = 0;       ///< server thread wakeup/dispatch
    double controllerUs = 0;     ///< DMA/FIFO latency
    double wireUs = 0;

    double totalUs() const;
    /** Share of a component, in percent of the total. */
    double percent(double component_us) const;
    /** CPU-side time (everything but wire + controller). */
    double cpuUs() const;
};

/** Configuration of the RPC system being modelled. */
struct RpcConfig
{
    EthernetDesc link;
    /** Header bytes the RPC protocol adds inside the payload. */
    std::uint32_t protocolHeaderBytes = 0;
    /** Fixed stub instructions, client / server side. */
    std::uint64_t clientStubInstructions = 220;
    std::uint64_t serverStubInstructions = 180;
    /** System calls per round trip (send + receive, both sides). */
    std::uint32_t syscallsPerRoundTrip = 4;
    /** Blocking context switches per round trip. */
    std::uint32_t contextSwitchesPerRoundTrip = 4;
    /** Interrupt-handler body instructions (beyond the trap itself). */
    std::uint64_t interruptHandlerInstructions = 150;
    /** Uncached device-register accesses in the interrupt handler. */
    std::uint32_t interruptDeviceAccesses = 12;
    /** Scheduler instructions to wake and dispatch the server thread. */
    std::uint64_t dispatchInstructions = 260;
    /** Checksum passes per packet (sender computes, receiver checks). */
    std::uint32_t checksumPassesPerPacket = 2;
    /** Copies of each argument/result buffer (user->kernel->wire). */
    std::uint32_t copiesPerTransfer = 2;
};

/** SRC RPC on one machine type (both ends identical, as on Fireflies). */
class SrcRpcModel
{
  public:
    explicit SrcRpcModel(const MachineDesc &machine,
                         RpcConfig config = {});

    /** Round-trip RPC with the given argument/result payloads. */
    RpcBreakdown roundTrip(std::uint32_t arg_bytes,
                           std::uint32_t result_bytes) const;

    /** The paper's small packet: 74 bytes each way. */
    RpcBreakdown nullRpc() const { return roundTrip(74, 74); }

    /**
     * What-if: scale the CPU by `factor` (all instruction-rate
     * components shrink; wire, controller and DRAM-limited copy terms
     * do not scale) — the §2.1 Schroeder–Burrows extrapolation check.
     */
    double scaledLatencyUs(std::uint32_t arg_bytes,
                           std::uint32_t result_bytes,
                           double cpu_factor) const;

    const MachineDesc &machine() const { return desc; }
    const RpcConfig &config() const { return cfg; }

  private:
    MachineDesc desc;
    RpcConfig cfg;
};

} // namespace aosd

#endif // AOSD_OS_IPC_RPC_HH
