/**
 * @file
 * User-level RPC (URPC) — the paper's §2.5 escape hatch: "operating
 * system designers ... should look for mechanisms that avoid the
 * kernel when possible (e.g., [Bershad et al. 90b])".
 *
 * On a shared-memory multiprocessor, client and server domains share
 * pairwise message queues in memory; calls are test&set-guarded
 * enqueues plus user-level thread switches, and the kernel is needed
 * only (amortized) for processor reallocation. The cost model composes
 * the same simulated pieces as everything else — lock cost (a kernel
 * trap on the MIPS!), copy cost, user-level thread switch cost — so
 * the technique's machine-dependence is visible.
 */

#ifndef AOSD_OS_IPC_URPC_HH
#define AOSD_OS_IPC_URPC_HH

#include <cstdint>

#include "arch/machine_desc.hh"
#include "os/threads/sync.hh"
#include "os/threads/thread.hh"

namespace aosd
{

/** Time distribution of a null URPC, in microseconds. */
struct UrpcBreakdown
{
    double lockUs = 0;          ///< queue locks, both directions
    double copyUs = 0;          ///< args onto / results off the queue
    double threadSwitchUs = 0;  ///< user-level switch to/from server
    double reallocationUs = 0;  ///< amortized kernel processor handoff

    double
    totalUs() const
    {
        return lockUs + copyUs + threadSwitchUs + reallocationUs;
    }
};

/** Configuration of the URPC path. */
struct UrpcConfig
{
    std::uint32_t argBytes = 16;
    /** Calls between kernel processor reallocations (the amortization
     *  the design depends on; 1 = every call goes to the kernel). */
    std::uint32_t callsPerReallocation = 50;
    ThreadCostOptions threadOpts;
};

/** URPC on one machine. */
class UrpcModel
{
  public:
    explicit UrpcModel(const MachineDesc &machine, UrpcConfig cfg = {});

    UrpcBreakdown nullCall() const;

    const MachineDesc &machine() const { return desc; }

  private:
    MachineDesc desc;
    UrpcConfig cfg;
};

} // namespace aosd

#endif // AOSD_OS_IPC_URPC_HH
