/**
 * @file
 * Message-level cost helpers shared by the RPC and LRPC models:
 * marshaling (parameter copying) and checksum computation (§2.1, §2.4).
 */

#ifndef AOSD_OS_IPC_MESSAGE_HH
#define AOSD_OS_IPC_MESSAGE_HH

#include <cstdint>

#include "arch/machine_desc.hh"
#include "sim/ticks.hh"

namespace aosd
{

/**
 * Cycles to checksum `bytes` of a packet buffer: one load plus adds per
 * 32-bit word. On machines whose I/O buffers sit in an uncached segment
 * (MIPS kseg1, i860) each load pays the uncached access; elsewhere the
 * buffer streams through the cache, missing once per line (§2.1: "each
 * checksum addition is paired with a load (which on some RISCs will
 * likely fetch from a non-cached I/O buffer)").
 */
Cycles checksumCycles(const MachineDesc &machine, std::uint64_t bytes);

/** Whether this machine's network buffers live in uncached space. */
bool usesUncachedIoBuffers(const MachineDesc &machine);

/**
 * Cycles to marshal `bytes` of parameters into a message (one copy
 * through the memory system; see copyCycles in mem/cache.hh) plus
 * fixed stub bookkeeping of `fixed_instructions`.
 */
Cycles marshalCycles(const MachineDesc &machine, std::uint64_t bytes,
                     std::uint64_t fixed_instructions);

} // namespace aosd

#endif // AOSD_OS_IPC_MESSAGE_HH
