/**
 * @file
 * Lightweight RPC model (Table 4, §2.2).
 *
 * LRPC [Bershad et al. 90a] lets the client thread execute directly in
 * the server's address space through shared, statically-mapped argument
 * stacks: a null call is two kernel entries and two address-space
 * switches plus a little stub work. The limiting factor is therefore
 * the *hardware* cost of crossing the kernel, and on an untagged TLB
 * (CVAX) roughly a quarter of the call vanishes into TLB refills after
 * the two purges. Both effects are simulated here with the machine's
 * primitives and its TLB model.
 */

#ifndef AOSD_OS_IPC_LRPC_HH
#define AOSD_OS_IPC_LRPC_HH

#include <cstdint>

#include "arch/machine_desc.hh"
#include "mem/tlb.hh"
#include "os/kernel/kernel.hh"

namespace aosd
{

/** Time distribution of a null LRPC, in microseconds. */
struct LrpcBreakdown
{
    double stubUs = 0;          ///< client + server stubs
    double kernelEntryUs = 0;   ///< two traps into the kernel
    double validationUs = 0;    ///< binding/A-stack checks, dispatch
    double contextSwitchUs = 0; ///< two address-space switches
    double tlbMissUs = 0;       ///< refills after untagged purges
    double argCopyUs = 0;       ///< copy onto/off the shared A-stack

    double
    totalUs() const
    {
        return stubUs + kernelEntryUs + validationUs + contextSwitchUs +
               tlbMissUs + argCopyUs;
    }

    /** The hardware-imposed floor: kernel entries + switches + minimal
     *  TLB refill (the "LRPC overhead vs hardware minimum" framing of
     *  Table 4). */
    double
    hardwareMinimumUs() const
    {
        return kernelEntryUs + contextSwitchUs + tlbMissUs;
    }

    /** Percentage of the call above the hardware floor. */
    double
    overheadPercent() const
    {
        return 100.0 * (totalUs() - hardwareMinimumUs()) / totalUs();
    }

    double
    tlbPercent() const
    {
        return 100.0 * tlbMissUs / totalUs();
    }
};

/** Configuration of the LRPC path. */
struct LrpcConfig
{
    /** Argument bytes for the simplest call. */
    std::uint32_t argBytes = 16;
    /** Pages each domain touches between crossings (its TLB working
     *  set; refilled after each purge on untagged hardware). */
    std::uint32_t clientWorkingSetPages = 10;
    std::uint32_t serverWorkingSetPages = 10;
    /** Stub instructions per side (LRPC stubs are a few instructions). */
    std::uint64_t stubInstructions = 110;
    /** Kernel validation/dispatch instructions per crossing. */
    std::uint64_t validationInstructions = 70;
};

/**
 * LRPC on one machine. Uses a live Tlb instance so the purge/refill
 * behaviour is simulated, not assumed: tagged TLBs lose (almost)
 * nothing, untagged TLBs refill both working sets per round trip.
 */
class LrpcModel
{
  public:
    explicit LrpcModel(const MachineDesc &machine, LrpcConfig cfg = {});

    /** Simulate one null round trip, steady state. */
    LrpcBreakdown nullCall() const;

    /**
     * Simulated TLB misses per round trip (steady state, after the
     * first call has warmed everything warmable).
     */
    std::uint64_t steadyStateTlbMisses() const;

    const MachineDesc &machine() const { return desc; }

  private:
    MachineDesc desc;
    LrpcConfig cfg;
};

} // namespace aosd

#endif // AOSD_OS_IPC_LRPC_HH
