#include "os/ipc/binding.hh"

#include "sim/logging.hh"

namespace aosd
{

Binding::Binding(std::uint32_t id, const AddressSpace *client,
                 const AddressSpace *server, std::uint32_t astacks,
                 std::uint32_t astack_bytes, Vpn base_vpn)
    : bindingId(id), clientSpace(client), serverSpace(server)
{
    for (std::uint32_t i = 0; i < astacks; ++i) {
        AStack s;
        s.id = i;
        s.vpn = base_vpn + i;
        s.bytes = astack_bytes;
        stacks.push_back(s);
    }
}

std::optional<std::uint32_t>
Binding::acquireAStack()
{
    for (auto &s : stacks) {
        if (!s.inUse) {
            s.inUse = true;
            return s.id;
        }
    }
    return std::nullopt;
}

void
Binding::releaseAStack(std::uint32_t astack_id)
{
    if (astack_id >= stacks.size())
        panic("release of unknown A-stack %u", astack_id);
    stacks[astack_id].inUse = false;
}

std::size_t
Binding::freeAStacks() const
{
    std::size_t n = 0;
    for (const auto &s : stacks)
        n += !s.inUse;
    return n;
}

void
BindingRegistry::exportInterface(const std::string &name,
                                 const AddressSpace &server)
{
    for (const auto &e : exports)
        if (e.name == name)
            fatal("interface '%s' already exported", name.c_str());
    exports.push_back({name, &server});
    counters.inc("exports");
}

std::optional<std::uint32_t>
BindingRegistry::bind(const std::string &name,
                      const AddressSpace &client,
                      std::uint32_t astacks,
                      std::uint32_t astack_bytes)
{
    for (const auto &e : exports) {
        if (e.name != name)
            continue;
        auto id = static_cast<std::uint32_t>(bindings.size());
        bindings.emplace_back(id, &client, e.server, astacks,
                              astack_bytes, nextSharedVpn);
        nextSharedVpn += astacks;
        counters.inc("binds");
        return id;
    }
    counters.inc("bind_failures");
    return std::nullopt;
}

bool
BindingRegistry::validate(std::uint32_t binding_id,
                          const AddressSpace &caller) const
{
    if (binding_id >= bindings.size())
        return false;
    return bindings[binding_id].client() == &caller;
}

Binding *
BindingRegistry::binding(std::uint32_t binding_id)
{
    if (binding_id >= bindings.size())
        return nullptr;
    return &bindings[binding_id];
}

} // namespace aosd
