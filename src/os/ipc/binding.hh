/**
 * @file
 * LRPC binding objects and argument stacks (§2.2, [Bershad et al.
 * 90a]).
 *
 * Before a client may LRPC into a server it binds: the kernel
 * validates the interface, allocates a set of argument stacks
 * (A-stacks) shared read-write between the two domains, and returns a
 * Binding the client presents on every call. This module implements
 * the functional side — A-stack allocation/reuse, binding validation,
 * call linkage records — that the LRPC cost model prices.
 */

#ifndef AOSD_OS_IPC_BINDING_HH
#define AOSD_OS_IPC_BINDING_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "os/kernel/address_space.hh"
#include "sim/stats.hh"

namespace aosd
{

/** One shared argument stack. */
struct AStack
{
    std::uint32_t id = 0;
    Vpn vpn = 0;           ///< mapped at the same VPN in both domains
    std::uint32_t bytes = 0;
    bool inUse = false;
};

/** A validated client/server communication channel. */
class Binding
{
  public:
    Binding(std::uint32_t id, const AddressSpace *client,
            const AddressSpace *server, std::uint32_t astacks,
            std::uint32_t astack_bytes, Vpn base_vpn);

    std::uint32_t id() const { return bindingId; }
    const AddressSpace *client() const { return clientSpace; }
    const AddressSpace *server() const { return serverSpace; }

    /** Claim a free A-stack for a call (nullopt when all are in use:
     *  the caller must wait, as concurrent calls exceed the set). */
    std::optional<std::uint32_t> acquireAStack();

    /** Return an A-stack after the call completes. */
    void releaseAStack(std::uint32_t astack_id);

    std::size_t freeAStacks() const;
    const std::vector<AStack> &aStacks() const { return stacks; }

  private:
    std::uint32_t bindingId;
    const AddressSpace *clientSpace;
    const AddressSpace *serverSpace;
    std::vector<AStack> stacks;
};

/**
 * The kernel's binding registry: servers export interfaces, clients
 * bind to them, calls validate the (binding, caller) pair — the check
 * the LRPC paper's "binding validation" time pays for.
 */
class BindingRegistry
{
  public:
    /** Server exports an interface by name. */
    void exportInterface(const std::string &name,
                         const AddressSpace &server);

    /** Client binds; returns binding id or nullopt if not exported. */
    std::optional<std::uint32_t> bind(const std::string &name,
                                      const AddressSpace &client,
                                      std::uint32_t astacks = 4,
                                      std::uint32_t astack_bytes = 256);

    /** Validate a call: the binding exists and belongs to `caller`. */
    bool validate(std::uint32_t binding_id,
                  const AddressSpace &caller) const;

    Binding *binding(std::uint32_t binding_id);

    const StatGroup &stats() const { return counters; }

  private:
    struct Export
    {
        std::string name;
        const AddressSpace *server;
    };

    std::vector<Export> exports;
    std::vector<Binding> bindings;
    Vpn nextSharedVpn = 0xE000;
    StatGroup counters{"binding"};
};

} // namespace aosd

#endif // AOSD_OS_IPC_BINDING_HH
