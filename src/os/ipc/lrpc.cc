#include "os/ipc/lrpc.hh"

#include "cpu/primitive_costs.hh"
#include "mem/cache.hh"
#include "sim/counters/counters.hh"
#include "sim/profile/profile.hh"
#include "sim/spantrace/spantrace.hh"
#include "sim/trace.hh"

namespace aosd
{

namespace
{

/**
 * Run `round_trips` LRPCs on a fresh kernel and return the TLB misses
 * counted during the final one (steady state).
 */
std::uint64_t
simulateTlbMisses(const MachineDesc &desc, const LrpcConfig &cfg,
                  unsigned round_trips)
{
    // A helper simulation inside an analytic model: its charges must
    // not leak into the caller's attribution tree or nest phantom
    // spans into an open request.
    ProfPause pause;
    SpanPause spause;
    SimKernel kernel(desc);
    AddressSpace &client = kernel.createSpace("client");
    AddressSpace &server = kernel.createSpace("server");
    client.setWorkingSet(0x1000, cfg.clientWorkingSetPages);
    server.setWorkingSet(0x2000, cfg.serverWorkingSetPages);
    // Map the working sets so walks succeed.
    client.mapRange(0x1000, cfg.clientWorkingSetPages, 0x9000, {});
    server.mapRange(0x2000, cfg.serverWorkingSetPages, 0xa000, {});

    kernel.contextSwitchTo(client); // start in the client

    std::uint64_t before = 0;
    for (unsigned i = 0; i < round_trips; ++i) {
        before = kernel.stats().get(kstat::userTlbMisses) +
                 kernel.stats().get(kstat::kernelTlbMisses);
        kernel.syscall();
        kernel.contextSwitchTo(server);
        kernel.syscall();
        kernel.contextSwitchTo(client);
    }
    std::uint64_t after = kernel.stats().get(kstat::userTlbMisses) +
                          kernel.stats().get(kstat::kernelTlbMisses);
    return after - before;
}

} // namespace

LrpcModel::LrpcModel(const MachineDesc &machine, LrpcConfig config)
    : desc(machine), cfg(config)
{}

std::uint64_t
LrpcModel::steadyStateTlbMisses() const
{
    return simulateTlbMisses(desc, cfg, 4);
}

LrpcBreakdown
LrpcModel::nullCall() const
{
    const PrimitiveCostDb &db = sharedCostDb();
    auto us = [&](Cycles c) { return desc.clock.cyclesToMicros(c); };

    LrpcBreakdown b;
    b.stubUs = 2.0 * us(cfg.stubInstructions);
    b.kernelEntryUs =
        2.0 * db.micros(desc.id, Primitive::NullSyscall);
    b.validationUs = 2.0 * us(cfg.validationInstructions);
    b.contextSwitchUs =
        2.0 * db.micros(desc.id, Primitive::ContextSwitch);

    // Simulated refills: on tagged TLBs this is ~0 in steady state;
    // untagged TLBs refill both domains' working sets every trip.
    std::uint64_t misses = steadyStateTlbMisses();
    Cycles miss_cost = desc.tlb.management == TlbManagement::Hardware
                           ? desc.tlb.hwMissCycles
                           : desc.tlb.swUserMissCycles;
    b.tlbMissUs = us(misses * miss_cost);

    // One copy onto the shared A-stack per direction.
    b.argCopyUs = 2.0 * us(copyCycles(desc, cfg.argBytes));

    // Call + reply ride the same-machine fast path.
    countEvent(HwCounter::IpcMessages, 2);
    countEvent(HwCounter::IpcFastPath);
    countEvent(HwCounter::IpcBytesCopied, 2ull * cfg.argBytes);

    auto cyc = [&](double micros) {
        return desc.clock.microsToCycles(micros);
    };

    // Attribute the components to the profiler tree, mirroring the
    // breakdown Table 4 reports.
    Profiler &prof = Profiler::instance();
    if (prof.enabled()) {
        ProfScope scope("lrpc");
        prof.addLeafCycles("stubs", cyc(b.stubUs));
        prof.addLeafCycles("kernel_entry", cyc(b.kernelEntryUs));
        prof.addLeafCycles("validation", cyc(b.validationUs));
        prof.addLeafCycles("context_switch", cyc(b.contextSwitchUs));
        prof.addLeafCycles("tlb_refill", cyc(b.tlbMissUs));
        prof.addLeafCycles("arg_copy", cyc(b.argCopyUs));
    }

    // Same components as one span group for an open traced request.
    if (spantraceEnabled()) {
        SpanGroup span("lrpc");
        spanLeaf("stubs", cyc(b.stubUs));
        spanLeaf("kernel_entry", cyc(b.kernelEntryUs));
        spanLeaf("validation", cyc(b.validationUs));
        spanLeaf("context_switch", cyc(b.contextSwitchUs));
        spanLeaf("tlb_refill", cyc(b.tlbMissUs));
        spanLeaf("arg_copy", cyc(b.argCopyUs));
    }

    // Lay the components on the trace timeline in call order.
    Tracer &tr = Tracer::instance();
    if (tr.enabled()) {
        tr.completeHere(cyc(b.stubUs), TraceEvent::RpcPhase,
                        "lrpc_stubs");
        tr.completeHere(cyc(b.kernelEntryUs), TraceEvent::RpcPhase,
                        "lrpc_kernel_entry");
        tr.completeHere(cyc(b.validationUs), TraceEvent::RpcPhase,
                        "lrpc_validation");
        tr.completeHere(cyc(b.contextSwitchUs), TraceEvent::RpcPhase,
                        "lrpc_context_switch");
        tr.completeHere(cyc(b.tlbMissUs), TraceEvent::RpcPhase,
                        "lrpc_tlb_refill", misses);
        tr.completeHere(cyc(b.argCopyUs), TraceEvent::RpcPhase,
                        "lrpc_arg_copy");
    }
    return b;
}

} // namespace aosd
