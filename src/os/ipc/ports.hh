/**
 * @file
 * Mach-style ports and messages (§2, §5).
 *
 * The decomposed system's services "communicate with users, with the
 * kernel, and with each other through message passing": kernel-owned
 * port queues with capability-like send/receive rights. This module
 * is the functional substrate of that claim — allocation, rights,
 * bounded queues, blocking receives — instrumented through SimKernel
 * so one RPC demonstrably costs "at least two system calls and two
 * context switches" (§5).
 */

#ifndef AOSD_OS_IPC_PORTS_HH
#define AOSD_OS_IPC_PORTS_HH

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "os/kernel/kernel.hh"

namespace aosd
{

/** Port name (kernel-wide). */
using PortId = std::uint32_t;

/** A message in flight. */
struct PortMessage
{
    PortId port = 0;
    std::uint32_t bytes = 0;
    const AddressSpace *sender = nullptr;
    /** Port on which a reply is expected (0 = none). */
    PortId replyPort = 0;
    std::uint64_t id = 0;
};

/** Outcome of a send/receive attempt. */
enum class PortResult
{
    Success,
    NoSuchPort,
    NoRight,
    QueueFull,
    WouldBlock, ///< receive on an empty queue
};

/** The kernel's port name space. */
class PortSpace
{
  public:
    explicit PortSpace(SimKernel &kernel,
                       std::uint32_t queue_limit = 16);

    /** Allocate a port; the owner holds the receive right. */
    PortId allocate(const AddressSpace &owner);

    /** Destroy a port; queued messages are dropped. */
    bool destroy(PortId port, const AddressSpace &caller);

    /** Grant a send right to another domain. */
    bool grantSendRight(PortId port, const AddressSpace &to);

    /**
     * Send a message (a system call: charged and counted). Validates
     * the sender's right and the queue bound.
     */
    PortResult send(const AddressSpace &sender, PortId port,
                    std::uint32_t bytes, PortId reply_port = 0);

    /**
     * Receive the next message (a system call). Only the receive-
     * right holder may receive; an empty queue returns WouldBlock
     * (the caller parks its thread and retries after a wakeup).
     */
    PortResult receive(const AddressSpace &receiver, PortId port,
                       PortMessage &out);

    std::size_t queued(PortId port) const;
    bool hasSendRight(PortId port, const AddressSpace &space) const;

    const StatGroup &stats() const { return counters; }

  private:
    struct Port
    {
        const AddressSpace *owner = nullptr;
        std::set<const AddressSpace *> senders;
        std::deque<PortMessage> queue;
    };

    SimKernel &sim;
    std::uint32_t queueLimit;
    std::map<PortId, Port> ports;
    PortId nextPort = 1;
    std::uint64_t nextMsg = 0;
    StatGroup counters{"ports"};
};

/**
 * One synchronous RPC over a pair of ports: send request, switch to
 * the server, server receives + replies, switch back, receive the
 * reply. Returns false on any rights/queue failure. Exists to make
 * the §5 cost identity ("at least two system calls and two context
 * switches ... to do the work of one system call") executable.
 */
bool portRpc(SimKernel &kernel, PortSpace &ports,
             AddressSpace &client, AddressSpace &server,
             PortId service_port, PortId reply_port,
             std::uint32_t request_bytes, std::uint32_t reply_bytes);

} // namespace aosd

#endif // AOSD_OS_IPC_PORTS_HH
