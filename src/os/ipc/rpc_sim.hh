/**
 * @file
 * Executed cross-machine RPC simulation.
 *
 * Where SrcRpcModel (Table 3) is an analytic composition of simulated
 * primitive costs, RpcSimulation actually *runs* the round trip:
 * client and server are SimKernels with schedulers, the request and
 * reply are packets on the event-driven Network, interrupts wake
 * threads, stubs and checksums charge their cycles as they execute.
 * Tests cross-validate the two — the executed latency must agree with
 * the analytic model — which is the same consistency check the paper's
 * authors performed between measured RPC time and its component
 * breakdown.
 */

#ifndef AOSD_OS_IPC_RPC_SIM_HH
#define AOSD_OS_IPC_RPC_SIM_HH

#include <cstdint>
#include <memory>

#include "net/network.hh"
#include "os/ipc/rpc.hh"
#include "os/kernel/kernel.hh"
#include "os/kernel/scheduler.hh"
#include "sim/event_queue.hh"

namespace aosd
{

/** Result of an executed RPC run. */
struct RpcSimResult
{
    /** Completed round trips. */
    std::uint64_t calls = 0;
    /** Wall-clock simulated time for the whole run, microseconds. */
    double elapsedUs = 0;
    /** Mean per-call latency, microseconds. */
    double latencyUs = 0;
    /** Client/server CPU microseconds actually charged. */
    double clientCpuUs = 0;
    double serverCpuUs = 0;
    std::uint64_t packets = 0;
};

/** Two identical machines on one Ethernet running null RPCs. */
class RpcSimulation
{
  public:
    RpcSimulation(const MachineDesc &machine, RpcConfig config = {});

    /** Run `calls` sequential null RPCs to completion. */
    RpcSimResult run(std::uint64_t calls,
                     std::uint32_t arg_bytes = 74,
                     std::uint32_t result_bytes = 74);

  private:
    struct Node;

    MachineDesc desc;
    RpcConfig cfg;
};

} // namespace aosd

#endif // AOSD_OS_IPC_RPC_SIM_HH
