file(REMOVE_RECURSE
  "libaosd.a"
)
