
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/isa.cc" "src/CMakeFiles/aosd.dir/arch/isa.cc.o" "gcc" "src/CMakeFiles/aosd.dir/arch/isa.cc.o.d"
  "/root/repo/src/arch/machines.cc" "src/CMakeFiles/aosd.dir/arch/machines.cc.o" "gcc" "src/CMakeFiles/aosd.dir/arch/machines.cc.o.d"
  "/root/repo/src/core/study.cc" "src/CMakeFiles/aosd.dir/core/study.cc.o" "gcc" "src/CMakeFiles/aosd.dir/core/study.cc.o.d"
  "/root/repo/src/cpu/exec_model.cc" "src/CMakeFiles/aosd.dir/cpu/exec_model.cc.o" "gcc" "src/CMakeFiles/aosd.dir/cpu/exec_model.cc.o.d"
  "/root/repo/src/cpu/handler_variants.cc" "src/CMakeFiles/aosd.dir/cpu/handler_variants.cc.o" "gcc" "src/CMakeFiles/aosd.dir/cpu/handler_variants.cc.o.d"
  "/root/repo/src/cpu/handlers.cc" "src/CMakeFiles/aosd.dir/cpu/handlers.cc.o" "gcc" "src/CMakeFiles/aosd.dir/cpu/handlers.cc.o.d"
  "/root/repo/src/cpu/primitive_costs.cc" "src/CMakeFiles/aosd.dir/cpu/primitive_costs.cc.o" "gcc" "src/CMakeFiles/aosd.dir/cpu/primitive_costs.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/aosd.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/aosd.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/page_table.cc" "src/CMakeFiles/aosd.dir/mem/page_table.cc.o" "gcc" "src/CMakeFiles/aosd.dir/mem/page_table.cc.o.d"
  "/root/repo/src/mem/phys_mem.cc" "src/CMakeFiles/aosd.dir/mem/phys_mem.cc.o" "gcc" "src/CMakeFiles/aosd.dir/mem/phys_mem.cc.o.d"
  "/root/repo/src/mem/tlb.cc" "src/CMakeFiles/aosd.dir/mem/tlb.cc.o" "gcc" "src/CMakeFiles/aosd.dir/mem/tlb.cc.o.d"
  "/root/repo/src/mem/write_buffer.cc" "src/CMakeFiles/aosd.dir/mem/write_buffer.cc.o" "gcc" "src/CMakeFiles/aosd.dir/mem/write_buffer.cc.o.d"
  "/root/repo/src/net/network.cc" "src/CMakeFiles/aosd.dir/net/network.cc.o" "gcc" "src/CMakeFiles/aosd.dir/net/network.cc.o.d"
  "/root/repo/src/os/ipc/binding.cc" "src/CMakeFiles/aosd.dir/os/ipc/binding.cc.o" "gcc" "src/CMakeFiles/aosd.dir/os/ipc/binding.cc.o.d"
  "/root/repo/src/os/ipc/lrpc.cc" "src/CMakeFiles/aosd.dir/os/ipc/lrpc.cc.o" "gcc" "src/CMakeFiles/aosd.dir/os/ipc/lrpc.cc.o.d"
  "/root/repo/src/os/ipc/message.cc" "src/CMakeFiles/aosd.dir/os/ipc/message.cc.o" "gcc" "src/CMakeFiles/aosd.dir/os/ipc/message.cc.o.d"
  "/root/repo/src/os/ipc/ports.cc" "src/CMakeFiles/aosd.dir/os/ipc/ports.cc.o" "gcc" "src/CMakeFiles/aosd.dir/os/ipc/ports.cc.o.d"
  "/root/repo/src/os/ipc/rpc.cc" "src/CMakeFiles/aosd.dir/os/ipc/rpc.cc.o" "gcc" "src/CMakeFiles/aosd.dir/os/ipc/rpc.cc.o.d"
  "/root/repo/src/os/ipc/rpc_sim.cc" "src/CMakeFiles/aosd.dir/os/ipc/rpc_sim.cc.o" "gcc" "src/CMakeFiles/aosd.dir/os/ipc/rpc_sim.cc.o.d"
  "/root/repo/src/os/ipc/urpc.cc" "src/CMakeFiles/aosd.dir/os/ipc/urpc.cc.o" "gcc" "src/CMakeFiles/aosd.dir/os/ipc/urpc.cc.o.d"
  "/root/repo/src/os/kernel/address_space.cc" "src/CMakeFiles/aosd.dir/os/kernel/address_space.cc.o" "gcc" "src/CMakeFiles/aosd.dir/os/kernel/address_space.cc.o.d"
  "/root/repo/src/os/kernel/kernel.cc" "src/CMakeFiles/aosd.dir/os/kernel/kernel.cc.o" "gcc" "src/CMakeFiles/aosd.dir/os/kernel/kernel.cc.o.d"
  "/root/repo/src/os/kernel/scheduler.cc" "src/CMakeFiles/aosd.dir/os/kernel/scheduler.cc.o" "gcc" "src/CMakeFiles/aosd.dir/os/kernel/scheduler.cc.o.d"
  "/root/repo/src/os/threads/activations.cc" "src/CMakeFiles/aosd.dir/os/threads/activations.cc.o" "gcc" "src/CMakeFiles/aosd.dir/os/threads/activations.cc.o.d"
  "/root/repo/src/os/threads/multiprocessor.cc" "src/CMakeFiles/aosd.dir/os/threads/multiprocessor.cc.o" "gcc" "src/CMakeFiles/aosd.dir/os/threads/multiprocessor.cc.o.d"
  "/root/repo/src/os/threads/sync.cc" "src/CMakeFiles/aosd.dir/os/threads/sync.cc.o" "gcc" "src/CMakeFiles/aosd.dir/os/threads/sync.cc.o.d"
  "/root/repo/src/os/threads/thread.cc" "src/CMakeFiles/aosd.dir/os/threads/thread.cc.o" "gcc" "src/CMakeFiles/aosd.dir/os/threads/thread.cc.o.d"
  "/root/repo/src/os/threads/thread_package.cc" "src/CMakeFiles/aosd.dir/os/threads/thread_package.cc.o" "gcc" "src/CMakeFiles/aosd.dir/os/threads/thread_package.cc.o.d"
  "/root/repo/src/os/vm/dsm.cc" "src/CMakeFiles/aosd.dir/os/vm/dsm.cc.o" "gcc" "src/CMakeFiles/aosd.dir/os/vm/dsm.cc.o.d"
  "/root/repo/src/os/vm/vm_clients.cc" "src/CMakeFiles/aosd.dir/os/vm/vm_clients.cc.o" "gcc" "src/CMakeFiles/aosd.dir/os/vm/vm_clients.cc.o.d"
  "/root/repo/src/os/vm/vm_manager.cc" "src/CMakeFiles/aosd.dir/os/vm/vm_manager.cc.o" "gcc" "src/CMakeFiles/aosd.dir/os/vm/vm_manager.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/aosd.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/aosd.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/logging.cc" "src/CMakeFiles/aosd.dir/sim/logging.cc.o" "gcc" "src/CMakeFiles/aosd.dir/sim/logging.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/aosd.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/aosd.dir/sim/stats.cc.o.d"
  "/root/repo/src/sim/table.cc" "src/CMakeFiles/aosd.dir/sim/table.cc.o" "gcc" "src/CMakeFiles/aosd.dir/sim/table.cc.o.d"
  "/root/repo/src/workload/os_model.cc" "src/CMakeFiles/aosd.dir/workload/os_model.cc.o" "gcc" "src/CMakeFiles/aosd.dir/workload/os_model.cc.o.d"
  "/root/repo/src/workload/ref_trace.cc" "src/CMakeFiles/aosd.dir/workload/ref_trace.cc.o" "gcc" "src/CMakeFiles/aosd.dir/workload/ref_trace.cc.o.d"
  "/root/repo/src/workload/synapse.cc" "src/CMakeFiles/aosd.dir/workload/synapse.cc.o" "gcc" "src/CMakeFiles/aosd.dir/workload/synapse.cc.o.d"
  "/root/repo/src/workload/workloads.cc" "src/CMakeFiles/aosd.dir/workload/workloads.cc.o" "gcc" "src/CMakeFiles/aosd.dir/workload/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
