# Empty compiler generated dependencies file for aosd.
# This may be replaced when dependencies are built.
