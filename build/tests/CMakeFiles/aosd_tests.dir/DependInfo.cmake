
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_activations_rpcsim.cc" "tests/CMakeFiles/aosd_tests.dir/test_activations_rpcsim.cc.o" "gcc" "tests/CMakeFiles/aosd_tests.dir/test_activations_rpcsim.cc.o.d"
  "/root/repo/tests/test_address_space.cc" "tests/CMakeFiles/aosd_tests.dir/test_address_space.cc.o" "gcc" "tests/CMakeFiles/aosd_tests.dir/test_address_space.cc.o.d"
  "/root/repo/tests/test_binding.cc" "tests/CMakeFiles/aosd_tests.dir/test_binding.cc.o" "gcc" "tests/CMakeFiles/aosd_tests.dir/test_binding.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/aosd_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/aosd_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_dsm.cc" "tests/CMakeFiles/aosd_tests.dir/test_dsm.cc.o" "gcc" "tests/CMakeFiles/aosd_tests.dir/test_dsm.cc.o.d"
  "/root/repo/tests/test_exec_model.cc" "tests/CMakeFiles/aosd_tests.dir/test_exec_model.cc.o" "gcc" "tests/CMakeFiles/aosd_tests.dir/test_exec_model.cc.o.d"
  "/root/repo/tests/test_extensions.cc" "tests/CMakeFiles/aosd_tests.dir/test_extensions.cc.o" "gcc" "tests/CMakeFiles/aosd_tests.dir/test_extensions.cc.o.d"
  "/root/repo/tests/test_fuzz_integration.cc" "tests/CMakeFiles/aosd_tests.dir/test_fuzz_integration.cc.o" "gcc" "tests/CMakeFiles/aosd_tests.dir/test_fuzz_integration.cc.o.d"
  "/root/repo/tests/test_handlers.cc" "tests/CMakeFiles/aosd_tests.dir/test_handlers.cc.o" "gcc" "tests/CMakeFiles/aosd_tests.dir/test_handlers.cc.o.d"
  "/root/repo/tests/test_ipc.cc" "tests/CMakeFiles/aosd_tests.dir/test_ipc.cc.o" "gcc" "tests/CMakeFiles/aosd_tests.dir/test_ipc.cc.o.d"
  "/root/repo/tests/test_isa.cc" "tests/CMakeFiles/aosd_tests.dir/test_isa.cc.o" "gcc" "tests/CMakeFiles/aosd_tests.dir/test_isa.cc.o.d"
  "/root/repo/tests/test_kernel.cc" "tests/CMakeFiles/aosd_tests.dir/test_kernel.cc.o" "gcc" "tests/CMakeFiles/aosd_tests.dir/test_kernel.cc.o.d"
  "/root/repo/tests/test_machines.cc" "tests/CMakeFiles/aosd_tests.dir/test_machines.cc.o" "gcc" "tests/CMakeFiles/aosd_tests.dir/test_machines.cc.o.d"
  "/root/repo/tests/test_multiprocessor.cc" "tests/CMakeFiles/aosd_tests.dir/test_multiprocessor.cc.o" "gcc" "tests/CMakeFiles/aosd_tests.dir/test_multiprocessor.cc.o.d"
  "/root/repo/tests/test_network.cc" "tests/CMakeFiles/aosd_tests.dir/test_network.cc.o" "gcc" "tests/CMakeFiles/aosd_tests.dir/test_network.cc.o.d"
  "/root/repo/tests/test_page_table.cc" "tests/CMakeFiles/aosd_tests.dir/test_page_table.cc.o" "gcc" "tests/CMakeFiles/aosd_tests.dir/test_page_table.cc.o.d"
  "/root/repo/tests/test_paper_claims.cc" "tests/CMakeFiles/aosd_tests.dir/test_paper_claims.cc.o" "gcc" "tests/CMakeFiles/aosd_tests.dir/test_paper_claims.cc.o.d"
  "/root/repo/tests/test_ports.cc" "tests/CMakeFiles/aosd_tests.dir/test_ports.cc.o" "gcc" "tests/CMakeFiles/aosd_tests.dir/test_ports.cc.o.d"
  "/root/repo/tests/test_scheduler.cc" "tests/CMakeFiles/aosd_tests.dir/test_scheduler.cc.o" "gcc" "tests/CMakeFiles/aosd_tests.dir/test_scheduler.cc.o.d"
  "/root/repo/tests/test_sim.cc" "tests/CMakeFiles/aosd_tests.dir/test_sim.cc.o" "gcc" "tests/CMakeFiles/aosd_tests.dir/test_sim.cc.o.d"
  "/root/repo/tests/test_study.cc" "tests/CMakeFiles/aosd_tests.dir/test_study.cc.o" "gcc" "tests/CMakeFiles/aosd_tests.dir/test_study.cc.o.d"
  "/root/repo/tests/test_synapse.cc" "tests/CMakeFiles/aosd_tests.dir/test_synapse.cc.o" "gcc" "tests/CMakeFiles/aosd_tests.dir/test_synapse.cc.o.d"
  "/root/repo/tests/test_threads.cc" "tests/CMakeFiles/aosd_tests.dir/test_threads.cc.o" "gcc" "tests/CMakeFiles/aosd_tests.dir/test_threads.cc.o.d"
  "/root/repo/tests/test_tlb.cc" "tests/CMakeFiles/aosd_tests.dir/test_tlb.cc.o" "gcc" "tests/CMakeFiles/aosd_tests.dir/test_tlb.cc.o.d"
  "/root/repo/tests/test_vm.cc" "tests/CMakeFiles/aosd_tests.dir/test_vm.cc.o" "gcc" "tests/CMakeFiles/aosd_tests.dir/test_vm.cc.o.d"
  "/root/repo/tests/test_vm_clients.cc" "tests/CMakeFiles/aosd_tests.dir/test_vm_clients.cc.o" "gcc" "tests/CMakeFiles/aosd_tests.dir/test_vm_clients.cc.o.d"
  "/root/repo/tests/test_workload.cc" "tests/CMakeFiles/aosd_tests.dir/test_workload.cc.o" "gcc" "tests/CMakeFiles/aosd_tests.dir/test_workload.cc.o.d"
  "/root/repo/tests/test_write_buffer.cc" "tests/CMakeFiles/aosd_tests.dir/test_write_buffer.cc.o" "gcc" "tests/CMakeFiles/aosd_tests.dir/test_write_buffer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aosd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
