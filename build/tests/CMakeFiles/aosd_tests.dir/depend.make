# Empty dependencies file for aosd_tests.
# This may be replaced when dependencies are built.
