file(REMOVE_RECURSE
  "CMakeFiles/example_lrpc_vs_rpc.dir/lrpc_vs_rpc.cpp.o"
  "CMakeFiles/example_lrpc_vs_rpc.dir/lrpc_vs_rpc.cpp.o.d"
  "example_lrpc_vs_rpc"
  "example_lrpc_vs_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_lrpc_vs_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
