# Empty compiler generated dependencies file for example_lrpc_vs_rpc.
# This may be replaced when dependencies are built.
