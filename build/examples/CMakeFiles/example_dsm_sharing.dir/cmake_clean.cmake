file(REMOVE_RECURSE
  "CMakeFiles/example_dsm_sharing.dir/dsm_sharing.cpp.o"
  "CMakeFiles/example_dsm_sharing.dir/dsm_sharing.cpp.o.d"
  "example_dsm_sharing"
  "example_dsm_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_dsm_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
