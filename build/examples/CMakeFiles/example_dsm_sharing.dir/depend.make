# Empty dependencies file for example_dsm_sharing.
# This may be replaced when dependencies are built.
