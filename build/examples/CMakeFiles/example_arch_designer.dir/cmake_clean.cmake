file(REMOVE_RECURSE
  "CMakeFiles/example_arch_designer.dir/arch_designer.cpp.o"
  "CMakeFiles/example_arch_designer.dir/arch_designer.cpp.o.d"
  "example_arch_designer"
  "example_arch_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_arch_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
