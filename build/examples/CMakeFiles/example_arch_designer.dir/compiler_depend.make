# Empty compiler generated dependencies file for example_arch_designer.
# This may be replaced when dependencies are built.
