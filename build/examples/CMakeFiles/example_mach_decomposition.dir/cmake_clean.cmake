file(REMOVE_RECURSE
  "CMakeFiles/example_mach_decomposition.dir/mach_decomposition.cpp.o"
  "CMakeFiles/example_mach_decomposition.dir/mach_decomposition.cpp.o.d"
  "example_mach_decomposition"
  "example_mach_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_mach_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
