# Empty compiler generated dependencies file for example_mach_decomposition.
# This may be replaced when dependencies are built.
