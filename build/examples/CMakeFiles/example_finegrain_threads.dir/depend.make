# Empty dependencies file for example_finegrain_threads.
# This may be replaced when dependencies are built.
