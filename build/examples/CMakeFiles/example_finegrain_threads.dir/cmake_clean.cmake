file(REMOVE_RECURSE
  "CMakeFiles/example_finegrain_threads.dir/finegrain_threads.cpp.o"
  "CMakeFiles/example_finegrain_threads.dir/finegrain_threads.cpp.o.d"
  "example_finegrain_threads"
  "example_finegrain_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_finegrain_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
