# Empty compiler generated dependencies file for example_cow_messaging.
# This may be replaced when dependencies are built.
