file(REMOVE_RECURSE
  "CMakeFiles/example_cow_messaging.dir/cow_messaging.cpp.o"
  "CMakeFiles/example_cow_messaging.dir/cow_messaging.cpp.o.d"
  "example_cow_messaging"
  "example_cow_messaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_cow_messaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
