# Empty compiler generated dependencies file for example_rpc_file_server.
# This may be replaced when dependencies are built.
