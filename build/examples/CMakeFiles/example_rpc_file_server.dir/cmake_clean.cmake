file(REMOVE_RECURSE
  "CMakeFiles/example_rpc_file_server.dir/rpc_file_server.cpp.o"
  "CMakeFiles/example_rpc_file_server.dir/rpc_file_server.cpp.o.d"
  "example_rpc_file_server"
  "example_rpc_file_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_rpc_file_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
