# Empty dependencies file for ablation_multiprocessor.
# This may be replaced when dependencies are built.
