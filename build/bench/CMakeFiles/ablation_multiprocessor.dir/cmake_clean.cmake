file(REMOVE_RECURSE
  "CMakeFiles/ablation_multiprocessor.dir/ablation_multiprocessor.cc.o"
  "CMakeFiles/ablation_multiprocessor.dir/ablation_multiprocessor.cc.o.d"
  "ablation_multiprocessor"
  "ablation_multiprocessor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multiprocessor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
