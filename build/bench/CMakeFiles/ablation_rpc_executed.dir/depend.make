# Empty dependencies file for ablation_rpc_executed.
# This may be replaced when dependencies are built.
