file(REMOVE_RECURSE
  "CMakeFiles/ablation_rpc_executed.dir/ablation_rpc_executed.cc.o"
  "CMakeFiles/ablation_rpc_executed.dir/ablation_rpc_executed.cc.o.d"
  "ablation_rpc_executed"
  "ablation_rpc_executed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rpc_executed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
