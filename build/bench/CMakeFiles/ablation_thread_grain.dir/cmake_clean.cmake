file(REMOVE_RECURSE
  "CMakeFiles/ablation_thread_grain.dir/ablation_thread_grain.cc.o"
  "CMakeFiles/ablation_thread_grain.dir/ablation_thread_grain.cc.o.d"
  "ablation_thread_grain"
  "ablation_thread_grain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_thread_grain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
