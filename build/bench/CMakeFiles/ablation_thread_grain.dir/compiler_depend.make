# Empty compiler generated dependencies file for ablation_thread_grain.
# This may be replaced when dependencies are built.
