file(REMOVE_RECURSE
  "CMakeFiles/ablation_vm_overloading.dir/ablation_vm_overloading.cc.o"
  "CMakeFiles/ablation_vm_overloading.dir/ablation_vm_overloading.cc.o.d"
  "ablation_vm_overloading"
  "ablation_vm_overloading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_vm_overloading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
