# Empty compiler generated dependencies file for ablation_vm_overloading.
# This may be replaced when dependencies are built.
