# Empty compiler generated dependencies file for ablation_activations.
# This may be replaced when dependencies are built.
