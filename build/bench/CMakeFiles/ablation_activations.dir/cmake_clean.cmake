file(REMOVE_RECURSE
  "CMakeFiles/ablation_activations.dir/ablation_activations.cc.o"
  "CMakeFiles/ablation_activations.dir/ablation_activations.cc.o.d"
  "ablation_activations"
  "ablation_activations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_activations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
