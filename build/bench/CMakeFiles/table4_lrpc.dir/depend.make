# Empty dependencies file for table4_lrpc.
# This may be replaced when dependencies are built.
