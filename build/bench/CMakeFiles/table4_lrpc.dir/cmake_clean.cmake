file(REMOVE_RECURSE
  "CMakeFiles/table4_lrpc.dir/table4_lrpc.cc.o"
  "CMakeFiles/table4_lrpc.dir/table4_lrpc.cc.o.d"
  "table4_lrpc"
  "table4_lrpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_lrpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
