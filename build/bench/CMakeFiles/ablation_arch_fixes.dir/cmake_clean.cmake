file(REMOVE_RECURSE
  "CMakeFiles/ablation_arch_fixes.dir/ablation_arch_fixes.cc.o"
  "CMakeFiles/ablation_arch_fixes.dir/ablation_arch_fixes.cc.o.d"
  "ablation_arch_fixes"
  "ablation_arch_fixes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_arch_fixes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
