file(REMOVE_RECURSE
  "CMakeFiles/ablation_tlb.dir/ablation_tlb.cc.o"
  "CMakeFiles/ablation_tlb.dir/ablation_tlb.cc.o.d"
  "ablation_tlb"
  "ablation_tlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
