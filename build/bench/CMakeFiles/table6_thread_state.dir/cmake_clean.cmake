file(REMOVE_RECURSE
  "CMakeFiles/table6_thread_state.dir/table6_thread_state.cc.o"
  "CMakeFiles/table6_thread_state.dir/table6_thread_state.cc.o.d"
  "table6_thread_state"
  "table6_thread_state.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_thread_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
