# Empty dependencies file for table6_thread_state.
# This may be replaced when dependencies are built.
