file(REMOVE_RECURSE
  "CMakeFiles/table7_mach_structure.dir/table7_mach_structure.cc.o"
  "CMakeFiles/table7_mach_structure.dir/table7_mach_structure.cc.o.d"
  "table7_mach_structure"
  "table7_mach_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_mach_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
