# Empty compiler generated dependencies file for table7_mach_structure.
# This may be replaced when dependencies are built.
