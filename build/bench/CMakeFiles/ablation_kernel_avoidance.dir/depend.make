# Empty dependencies file for ablation_kernel_avoidance.
# This may be replaced when dependencies are built.
