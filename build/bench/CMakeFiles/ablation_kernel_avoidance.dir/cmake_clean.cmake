file(REMOVE_RECURSE
  "CMakeFiles/ablation_kernel_avoidance.dir/ablation_kernel_avoidance.cc.o"
  "CMakeFiles/ablation_kernel_avoidance.dir/ablation_kernel_avoidance.cc.o.d"
  "ablation_kernel_avoidance"
  "ablation_kernel_avoidance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_kernel_avoidance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
