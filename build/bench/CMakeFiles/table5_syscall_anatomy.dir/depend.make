# Empty dependencies file for table5_syscall_anatomy.
# This may be replaced when dependencies are built.
