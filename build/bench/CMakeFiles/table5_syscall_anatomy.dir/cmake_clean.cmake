file(REMOVE_RECURSE
  "CMakeFiles/table5_syscall_anatomy.dir/table5_syscall_anatomy.cc.o"
  "CMakeFiles/table5_syscall_anatomy.dir/table5_syscall_anatomy.cc.o.d"
  "table5_syscall_anatomy"
  "table5_syscall_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_syscall_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
