# Empty compiler generated dependencies file for table3_src_rpc.
# This may be replaced when dependencies are built.
