file(REMOVE_RECURSE
  "CMakeFiles/table3_src_rpc.dir/table3_src_rpc.cc.o"
  "CMakeFiles/table3_src_rpc.dir/table3_src_rpc.cc.o.d"
  "table3_src_rpc"
  "table3_src_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_src_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
