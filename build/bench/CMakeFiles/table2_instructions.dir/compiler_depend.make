# Empty compiler generated dependencies file for table2_instructions.
# This may be replaced when dependencies are built.
