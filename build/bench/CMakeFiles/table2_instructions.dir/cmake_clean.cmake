file(REMOVE_RECURSE
  "CMakeFiles/table2_instructions.dir/table2_instructions.cc.o"
  "CMakeFiles/table2_instructions.dir/table2_instructions.cc.o.d"
  "table2_instructions"
  "table2_instructions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_instructions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
