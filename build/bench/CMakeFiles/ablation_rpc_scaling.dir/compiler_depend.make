# Empty compiler generated dependencies file for ablation_rpc_scaling.
# This may be replaced when dependencies are built.
