file(REMOVE_RECURSE
  "CMakeFiles/ablation_rpc_scaling.dir/ablation_rpc_scaling.cc.o"
  "CMakeFiles/ablation_rpc_scaling.dir/ablation_rpc_scaling.cc.o.d"
  "ablation_rpc_scaling"
  "ablation_rpc_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rpc_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
