file(REMOVE_RECURSE
  "CMakeFiles/ablation_os_tlb_behavior.dir/ablation_os_tlb_behavior.cc.o"
  "CMakeFiles/ablation_os_tlb_behavior.dir/ablation_os_tlb_behavior.cc.o.d"
  "ablation_os_tlb_behavior"
  "ablation_os_tlb_behavior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_os_tlb_behavior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
