# Empty compiler generated dependencies file for ablation_os_tlb_behavior.
# This may be replaced when dependencies are built.
