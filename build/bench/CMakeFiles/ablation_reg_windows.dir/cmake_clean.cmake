file(REMOVE_RECURSE
  "CMakeFiles/ablation_reg_windows.dir/ablation_reg_windows.cc.o"
  "CMakeFiles/ablation_reg_windows.dir/ablation_reg_windows.cc.o.d"
  "ablation_reg_windows"
  "ablation_reg_windows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reg_windows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
