# Empty compiler generated dependencies file for ablation_reg_windows.
# This may be replaced when dependencies are built.
