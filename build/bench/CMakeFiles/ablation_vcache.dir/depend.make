# Empty dependencies file for ablation_vcache.
# This may be replaced when dependencies are built.
