file(REMOVE_RECURSE
  "CMakeFiles/ablation_vcache.dir/ablation_vcache.cc.o"
  "CMakeFiles/ablation_vcache.dir/ablation_vcache.cc.o.d"
  "ablation_vcache"
  "ablation_vcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_vcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
